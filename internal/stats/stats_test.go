package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestPercentileBasics(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {-5, 1}, {150, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Percentile(xs, 50); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Percentile(50) = %v, want 5", got)
	}
	if got := Percentile(xs, 10); !almostEqual(got, 1, 1e-12) {
		t.Errorf("Percentile(10) = %v, want 1", got)
	}
}

func TestPercentileEmpty(t *testing.T) {
	if got := Percentile(nil, 50); !math.IsNaN(got) {
		t.Errorf("Percentile(nil) = %v, want NaN", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Percentile mutated input: %v", xs)
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	s := Summarize(xs)
	if s.Min != 1 || s.Max != 5 || s.Median != 3 || s.N != 5 {
		t.Errorf("unexpected summary: %+v", s)
	}
	if !almostEqual(s.Mean, 3, 1e-12) {
		t.Errorf("mean = %v, want 3", s.Mean)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if !math.IsNaN(s.Mean) || s.N != 0 {
		t.Errorf("Summarize(nil) = %+v, want NaNs", s)
	}
}

func TestCDFAt(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	cases := []struct {
		x    float64
		want float64
	}{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {10, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); !almostEqual(got, tc.want, 1e-12) {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	if got := c.Quantile(0.5); got != 2 {
		t.Errorf("Quantile(0.5) = %v, want 2", got)
	}
	if got := c.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %v, want 1", got)
	}
	if got := c.Quantile(1); got != 4 {
		t.Errorf("Quantile(1) = %v, want 4", got)
	}
}

func TestCDFPointsDeduplicated(t *testing.T) {
	c := NewCDF([]float64{1, 1, 2, 2, 2, 3})
	xs, ps := c.Points()
	if len(xs) != 3 {
		t.Fatalf("want 3 distinct points, got %d", len(xs))
	}
	if ps[len(ps)-1] != 1 {
		t.Errorf("last CDF point = %v, want 1", ps[len(ps)-1])
	}
}

// Property: CDF is monotone nondecreasing and bounded by [0, 1].
func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		c := NewCDF(xs)
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		pa, pb := c.At(lo), c.At(hi)
		return pa <= pb && pa >= 0 && pb <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Quantile and At are near-inverse: At(Quantile(q)) >= q.
func TestCDFQuantileInverseProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	c := NewCDF(xs)
	for q := 0.01; q < 1.0; q += 0.01 {
		v := c.Quantile(q)
		if c.At(v) < q-1e-9 {
			t.Fatalf("At(Quantile(%v)) = %v < q", q, c.At(v))
		}
	}
}

func TestWeibullSampleMatchesCDF(t *testing.T) {
	w := Weibull{Shape: 1.5, Scale: 100}
	r := NewRand(42)
	n := 20000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = w.Sample(r)
	}
	c := NewCDF(xs)
	// Kolmogorov–Smirnov style check at several points.
	for _, x := range []float64{20, 50, 100, 200, 400} {
		want := w.CDFAt(x)
		got := c.At(x)
		if !almostEqual(got, want, 0.02) {
			t.Errorf("empirical CDF at %v = %v, want ~%v", x, got, want)
		}
	}
}

func TestWeibullMean(t *testing.T) {
	w := Weibull{Shape: 1, Scale: 50} // exponential: mean = scale
	if !almostEqual(w.Mean(), 50, 1e-9) {
		t.Errorf("mean = %v, want 50", w.Mean())
	}
}

func TestWeibullCDFAtNonPositive(t *testing.T) {
	w := Weibull{Shape: 2, Scale: 10}
	if w.CDFAt(0) != 0 || w.CDFAt(-1) != 0 {
		t.Error("CDF at non-positive x should be 0")
	}
}

func TestFitWeibullRecoversParameters(t *testing.T) {
	truth := Weibull{Shape: 1.3, Scale: 80}
	r := NewRand(11)
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = truth.Sample(r)
	}
	got, err := FitWeibull(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Shape-truth.Shape)/truth.Shape > 0.1 {
		t.Errorf("fitted shape %v too far from %v", got.Shape, truth.Shape)
	}
	if math.Abs(got.Scale-truth.Scale)/truth.Scale > 0.1 {
		t.Errorf("fitted scale %v too far from %v", got.Scale, truth.Scale)
	}
}

func TestFitWeibullErrors(t *testing.T) {
	if _, err := FitWeibull(nil); err == nil {
		t.Error("want error for empty sample")
	}
	if _, err := FitWeibull([]float64{-1, -2, 0}); err == nil {
		t.Error("want error for non-positive sample")
	}
}

func TestFitWeibullDegenerate(t *testing.T) {
	w, err := FitWeibull([]float64{5, 5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(w.Scale, 5, 0.5) {
		t.Errorf("degenerate fit scale = %v, want ~5", w.Scale)
	}
}

func TestNewRandDeterminism(t *testing.T) {
	a, b := NewRand(99), NewRand(99)
	for i := 0; i < 10; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different sequences")
		}
	}
}

func TestMeanSum(t *testing.T) {
	if !almostEqual(Mean([]float64{1, 2, 3}), 2, 1e-12) {
		t.Error("Mean wrong")
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
	if Sum([]float64{1.5, 2.5}) != 4 {
		t.Error("Sum wrong")
	}
	if Sum(nil) != 0 {
		t.Error("Sum(nil) should be 0")
	}
}

// Property: Summarize ordering min <= p25 <= median <= p75 <= p95 <= max.
func TestSummaryOrderingProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		ordered := s.Min <= s.P25 && s.P25 <= s.Median && s.Median <= s.P75 &&
			s.P75 <= s.P95 && s.P95 <= s.Max
		sort.Float64s(xs)
		return ordered && s.Min == xs[0] && s.Max == xs[len(xs)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
