// Package stats provides small statistical helpers shared across the MegaTE
// codebase: deterministic random sources, Weibull sampling and fitting,
// empirical CDFs, and percentile summaries.
//
// Everything here is deterministic given a seed, so simulations and
// benchmarks are reproducible run to run.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// NewRand returns a deterministic random source for the given seed.
// All MegaTE generators take an explicit *rand.Rand so that experiments can
// be replayed exactly.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It does not modify xs.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary captures a five-number-plus-mean description of a sample,
// the shape used by the paper's box plots (Figure 2a).
type Summary struct {
	Min, P25, Median, P75, P95, P99, Max, Mean float64
	N                                          int
}

// Summarize computes a Summary of xs. It does not modify xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{Min: math.NaN(), P25: math.NaN(), Median: math.NaN(),
			P75: math.NaN(), P95: math.NaN(), P99: math.NaN(), Max: math.NaN(), Mean: math.NaN()}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	sum := 0.0
	for _, x := range sorted {
		sum += x
	}
	return Summary{
		Min:    sorted[0],
		P25:    percentileSorted(sorted, 25),
		Median: percentileSorted(sorted, 50),
		P75:    percentileSorted(sorted, 75),
		P95:    percentileSorted(sorted, 95),
		P99:    percentileSorted(sorted, 99),
		Max:    sorted[len(sorted)-1],
		Mean:   sum / float64(len(sorted)),
		N:      len(sorted),
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.3g p25=%.3g med=%.3g p75=%.3g p95=%.3g max=%.3g mean=%.3g",
		s.N, s.Min, s.P25, s.Median, s.P75, s.P95, s.Max, s.Mean)
}

// CDF is an empirical cumulative distribution function over a sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from xs. It copies xs.
func NewCDF(xs []float64) *CDF {
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return &CDF{sorted: sorted}
}

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	// Index of first element > x.
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the smallest sample value v with P(X <= v) >= q.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	i := int(math.Ceil(q*float64(len(c.sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return c.sorted[i]
}

// Points returns (x, P(X<=x)) pairs suitable for plotting the CDF as the
// paper does in Figure 8. It emits one point per distinct sample value.
func (c *CDF) Points() (xs, ps []float64) {
	n := len(c.sorted)
	for i := 0; i < n; i++ {
		if i+1 < n && c.sorted[i+1] == c.sorted[i] {
			continue
		}
		xs = append(xs, c.sorted[i])
		ps = append(ps, float64(i+1)/float64(n))
	}
	return xs, ps
}

// Weibull is a two-parameter Weibull distribution. The paper fits one to the
// empirical distribution of endpoints per router site (Figure 8) and sweeps
// the scale parameter to grow the topology.
type Weibull struct {
	Shape float64 // k > 0
	Scale float64 // lambda > 0
}

// Sample draws one value.
func (w Weibull) Sample(r *rand.Rand) float64 {
	// Inverse-CDF sampling: x = lambda * (-ln(1-u))^(1/k).
	u := r.Float64()
	return w.Scale * math.Pow(-math.Log1p(-u), 1/w.Shape)
}

// CDFAt returns the distribution function at x.
func (w Weibull) CDFAt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 1 - math.Exp(-math.Pow(x/w.Scale, w.Shape))
}

// Mean returns the distribution mean lambda * Gamma(1 + 1/k).
func (w Weibull) Mean() float64 {
	return w.Scale * math.Gamma(1+1/w.Shape)
}

// FitWeibull estimates Weibull parameters from a positive sample using the
// method of moments on log-transformed data (Menon's estimator), which is
// closed-form and adequate for the fitting the paper performs in §6.1.
func FitWeibull(xs []float64) (Weibull, error) {
	var logs []float64
	for _, x := range xs {
		if x > 0 {
			logs = append(logs, math.Log(x))
		}
	}
	if len(logs) < 2 {
		return Weibull{}, fmt.Errorf("stats: need at least 2 positive samples to fit Weibull, got %d", len(logs))
	}
	mean := 0.0
	for _, l := range logs {
		mean += l
	}
	mean /= float64(len(logs))
	varl := 0.0
	for _, l := range logs {
		varl += (l - mean) * (l - mean)
	}
	varl /= float64(len(logs) - 1)
	if varl == 0 {
		// Degenerate sample: all values equal; any large shape fits.
		return Weibull{Shape: 100, Scale: math.Exp(mean)}, nil
	}
	// For Weibull, Var[ln X] = pi^2 / (6 k^2) and E[ln X] = ln lambda - gamma/k.
	k := math.Pi / math.Sqrt(6*varl)
	const eulerGamma = 0.5772156649015329
	lambda := math.Exp(mean + eulerGamma/k)
	return Weibull{Shape: k, Scale: lambda}, nil
}

// Mean returns the arithmetic mean of xs, NaN when empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum
}
