package federation

import (
	"net"
	"reflect"
	"strings"
	"testing"

	"megate/internal/controlplane"
	"megate/internal/kvstore"
	"megate/internal/telemetry"
)

// startGateway serves gw on a fresh loopback listener and returns its
// address. The listener is closed by gw.Close (registered as cleanup).
func startGateway(t *testing.T, gw *Gateway) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	gw.Start(l)
	t.Cleanup(gw.Close)
	return l.Addr().String()
}

func TestGatewayExchange(t *testing.T) {
	reg := telemetry.NewRegistry()
	store := kvstore.NewStore(2)
	east := &Gateway{Domain: "east", Metrics: reg}
	west := &Gateway{Domain: "west", Metrics: reg, Store: controlplane.StoreAdapter{Store: store}}
	eastAddr := startGateway(t, east)

	east.AddPeer("west", "") // east must know west to answer its PULLs
	west.AddPeer("east", eastAddr)

	summary := []SummaryEntry{{DstSite: 2, Class: 1, Mbps: 50}, {DstSite: 4, Class: 2, Mbps: 12.5}}
	recs := []ExportRecord{{
		Instance: GatewayInstance("west"),
		Paths:    []controlplane.PathEntry{{DstSite: 2, Hops: []uint32{0, 1, 2}, Tier: 1}},
	}}
	east.SetLocalDemand("west", summary)
	east.SetExports("west", recs)

	if err := west.Exchange("east"); err != nil {
		t.Fatal(err)
	}
	got := west.ImportedSummaries()["east"]
	if !reflect.DeepEqual(got, summary) {
		t.Fatalf("imported summary = %+v, want %+v", got, summary)
	}
	if west.ImportedEpoch("east") != east.Epoch() {
		t.Fatalf("imported epoch %d != export epoch %d", west.ImportedEpoch("east"), east.Epoch())
	}
	// The config record landed under fed/east/ in west's database, as a
	// regular InstanceConfig JSON payload an agent could decode.
	data, ok := store.Get(FedKey("east", GatewayInstance("west")))
	if !ok {
		t.Fatal("fed/ record not published")
	}
	if !strings.Contains(string(data), `"hops":[0,1,2]`) || !strings.Contains(string(data), `"tier":1`) {
		t.Fatalf("fed/ record payload: %s", data)
	}
	if _, ok := store.Get(FedEpochKey("east")); !ok {
		t.Fatal("fed/epoch marker not published")
	}

	// Nothing changed: the second exchange takes the CURRENT path, still
	// counts as a reachable import, and leaves the epoch alone.
	before := west.ImportedEpoch("east")
	if err := west.Exchange("east"); err != nil {
		t.Fatal(err)
	}
	if west.ImportedEpoch("east") != before {
		t.Fatal("CURRENT answer must not move the imported epoch")
	}

	snap := metricValue(t, reg, MetricSummaryImports)
	if snap != 2 {
		t.Fatalf("imports counter = %v, want 2", snap)
	}
	if exp := metricValue(t, reg, MetricSummaryExports); exp != 1 {
		t.Fatalf("exports counter = %v, want 1", exp)
	}
}

func TestGatewayUnknownPeer(t *testing.T) {
	east := &Gateway{Domain: "east"}
	addr := startGateway(t, east)
	west := &Gateway{Domain: "west"}
	west.AddPeer("east", addr)
	// east has not registered west: the PULL is answered with NONE.
	if err := west.Exchange("east"); err == nil {
		t.Fatal("exchange with unregistered requester must fail")
	}
}

func TestGatewayStaleTTLAndRecovery(t *testing.T) {
	reg := telemetry.NewRegistry()
	store := kvstore.NewStore(2)
	east := &Gateway{Domain: "east", Metrics: reg}
	west := &Gateway{Domain: "west", Metrics: reg, StaleAfter: 2, Store: controlplane.StoreAdapter{Store: store}}
	eastAddr := startGateway(t, east)
	east.AddPeer("west", "")
	west.AddPeer("east", eastAddr)
	east.SetLocalDemand("west", []SummaryEntry{{DstSite: 1, Class: 2, Mbps: 30}})
	east.SetExports("west", []ExportRecord{{Instance: GatewayInstance("west"), Paths: []controlplane.PathEntry{{DstSite: 1, Hops: []uint32{0, 1}}}}})
	if err := west.Exchange("east"); err != nil {
		t.Fatal(err)
	}
	if len(west.ImportedSummaries()["east"]) == 0 {
		t.Fatal("initial import missing")
	}

	// Cut east off: point west at a dead address. One failure is under the
	// TTL — imported state must survive (the agent semantics: ride out a
	// blip on the last good config).
	east.Close()
	if err := west.Exchange("east"); err == nil {
		t.Fatal("exchange against dead gateway should fail")
	}
	if west.PeerStale("east") {
		t.Fatal("one failure must not fire a StaleAfter=2 TTL")
	}
	if len(west.ImportedSummaries()["east"]) == 0 {
		t.Fatal("imported state dropped before the TTL fired")
	}

	// Second consecutive failure fires the TTL: summaries dropped, fed/
	// records deleted, fallback counted.
	if err := west.Exchange("east"); err == nil {
		t.Fatal("exchange against dead gateway should fail")
	}
	if !west.PeerStale("east") {
		t.Fatal("TTL did not fire after StaleAfter failures")
	}
	if len(west.ImportedSummaries()) != 0 {
		t.Fatal("stale peer's summary still reported")
	}
	if _, ok := store.Get(FedKey("east", GatewayInstance("west"))); ok {
		t.Fatal("stale fed/ record not deleted")
	}
	if _, ok := store.Get(FedEpochKey("east")); ok {
		t.Fatal("stale fed/epoch marker not deleted")
	}
	if v := metricValue(t, reg, MetricStaleFallbacks); v != 1 {
		t.Fatalf("stale fallback counter = %v, want 1", v)
	}

	// Heal: restart east's gateway and re-point west. The next exchange
	// must reimport in full (the since-epoch was reset with the drop).
	east2 := &Gateway{Domain: "east", Metrics: reg}
	addr2 := startGateway(t, east2)
	east2.AddPeer("west", "")
	east2.SetLocalDemand("west", []SummaryEntry{{DstSite: 1, Class: 2, Mbps: 30}})
	east2.SetExports("west", []ExportRecord{{Instance: GatewayInstance("west"), Paths: []controlplane.PathEntry{{DstSite: 1, Hops: []uint32{0, 1}}}}})
	west.AddPeer("east", addr2)
	if err := west.Exchange("east"); err != nil {
		t.Fatal(err)
	}
	if west.PeerStale("east") {
		t.Fatal("peer still stale after successful exchange")
	}
	if len(west.ImportedSummaries()["east"]) == 0 {
		t.Fatal("summary not reimported after heal")
	}
	if _, ok := store.Get(FedKey("east", GatewayInstance("west"))); !ok {
		t.Fatal("fed/ record not republished after heal")
	}
}

// metricValue reads one counter from a registry snapshot.
func metricValue(t *testing.T, reg *telemetry.Registry, name string) float64 {
	t.Helper()
	for _, s := range reg.Snapshot() {
		if s.Name == name {
			return s.Value
		}
	}
	return 0
}
