// Package federation extends MegaTE's single-WAN control loop to multiple
// independent TE domains (regions/clouds), each running its own controller,
// sharded TE database, and agent fleet. Domains exchange state east-west
// through gateway nodes instead of sharing a solver:
//
//   - Each domain periodically exports a *demand summary* per remote domain:
//     site→remote-site totals aggregated per QoS class, never per-instance
//     rows. The importing domain folds them into its stage-1 LP as boundary
//     commodities entering at its border site, so inter-domain traffic shapes
//     the local solve without the solver ever seeing foreign endpoints.
//
//   - Each domain exports the config records it computed for its *ingress
//     gateway instance* (`fedgw:<peer>` — the local stand-in for traffic
//     arriving from that peer). The peer publishes them into its own cluster
//     under the `fed/` prefix with a separate epoch, so intra-domain delta
//     publication (te/cfg/* + the monotone version) is untouched.
//
//   - When a peer becomes unreachable for StaleAfter consecutive exchange
//     rounds — the gateway mirror of the agent's StaleAfter TTL — its
//     imported state is dropped: the fed/ records are deleted and the
//     boundary commodities vanish from the next solve, so cross-domain flows
//     fall back to conventional routing (§6.3 semantics) while intra-domain
//     TE keeps converging. A successful exchange reimports and republishes.
//
// The wire protocol is a line protocol in the style of the kvstore TE
// database (PULL/SUMMARY/CURRENT), carried over any net.Conn so the
// faultnet fabric can inject partitions between gateways deterministically.
package federation

import (
	"sort"

	"megate/internal/controlplane"
	"megate/internal/traffic"
)

// FedPrefix is the database key prefix for imported federation records —
// separate from te/cfg/ so intra-domain delta publication never touches it.
const FedPrefix = "fed/"

// FedKey returns the database key under which a peer's exported record for
// an instance is published locally.
func FedKey(peer, instance string) string { return FedPrefix + peer + "/" + instance }

// FedEpochKey returns the database key holding the last imported epoch of a
// peer — the fed/ analogue of the kvstore publish version.
func FedEpochKey(peer string) string { return FedPrefix + "epoch/" + peer }

// SummaryEntry is one row of a demand summary: the total demand of one QoS
// class from the exporting domain toward one site of the importing domain.
// Aggregation rule: sum of per-flow demands grouped by (DstSite, Class) —
// per-instance granularity never crosses the domain boundary.
type SummaryEntry struct {
	DstSite uint32
	Class   uint8
	Mbps    float64
}

// ExportRecord is one egress-gateway configuration record a domain exports
// to a peer: the SR paths (in the exporter's site-ID space, opaque to the
// importer) computed for the peer's traffic entering the exporting domain.
type ExportRecord struct {
	Instance string
	Paths    []controlplane.PathEntry
}

// Exchange is one full gateway exchange payload: the exporter's demand
// summary toward the requesting domain plus the egress config records it
// computed for that domain's traffic, stamped with the exporter's epoch.
type Exchange struct {
	Domain  string
	Epoch   uint64
	Summary []SummaryEntry
	Configs []ExportRecord
}

// GatewayInstance names the local ingress stand-in endpoint for traffic
// arriving from a peer domain.
func GatewayInstance(peer string) string { return "fedgw:" + peer }

// AggregateSummary folds remote flows destined to one domain into sorted
// summary entries: totals per (DstSite, Class), ascending DstSite then
// Class, so the same demand always serializes identically.
func AggregateSummary(flows []RemoteFlow, dstDomain string) []SummaryEntry {
	type key struct {
		site  uint32
		class uint8
	}
	totals := make(map[key]float64)
	for _, f := range flows {
		if f.DstDomain != dstDomain || f.Mbps <= 0 {
			continue
		}
		totals[key{uint32(f.DstSite), uint8(f.Class)}] += f.Mbps
	}
	out := make([]SummaryEntry, 0, len(totals))
	for k, mbps := range totals {
		out = append(out, SummaryEntry{DstSite: k.site, Class: k.class, Mbps: mbps})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].DstSite != out[b].DstSite {
			return out[a].DstSite < out[b].DstSite
		}
		return out[a].Class < out[b].Class
	})
	return out
}

// RemoteFlow is one cross-domain demand as the scenario layer describes it:
// traffic originating at a local site, destined to a site of another domain.
// The gateway aggregates these into the summaries it exports; the remote
// site ID lives in the destination domain's ID space.
type RemoteFlow struct {
	SrcSite   int
	DstDomain string
	DstSite   int
	Class     traffic.Class
	Mbps      float64
}
