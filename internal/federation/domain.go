package federation

import (
	"fmt"
	"sort"

	"megate/internal/controlplane"
	"megate/internal/core"
	"megate/internal/topology"
	"megate/internal/traffic"
)

// Domain wires one TE domain into the federation: its controller and
// topology, its gateway, and the border site where inter-domain traffic
// enters and leaves. Each peer gets one ingress stand-in endpoint
// (`fedgw:<peer>`) attached at the border site; imported demand summaries
// become flows originating there, so the local stage-1 LP carries the
// cross-domain traffic from the border to its destination sites without
// ever seeing the remote endpoints behind it.
type Domain struct {
	Name       string
	Topo       *topology.Topology
	Ctrl       *controlplane.Controller
	GW         *Gateway
	BorderSite topology.SiteID
	// Remote is the domain's cross-domain demand for the current interval:
	// what its endpoints want to send into other domains. The scenario layer
	// sets it; RunInterval aggregates it into the exported summaries.
	Remote []RemoteFlow

	gwEndpoints map[string]topology.EndpointID
}

// NewDomain builds a federated domain around an existing controller and
// gateway.
func NewDomain(name string, topo *topology.Topology, ctrl *controlplane.Controller, gw *Gateway, border topology.SiteID) *Domain {
	return &Domain{
		Name:        name,
		Topo:        topo,
		Ctrl:        ctrl,
		GW:          gw,
		BorderSite:  border,
		gwEndpoints: make(map[string]topology.EndpointID),
	}
}

// gatewayEndpoint returns (creating on first use) the ingress stand-in
// endpoint for a peer's traffic, attached at the border site.
func (d *Domain) gatewayEndpoint(peer string) topology.EndpointID {
	if ep, ok := d.gwEndpoints[peer]; ok {
		return ep
	}
	ep := d.Topo.AddEndpoint(d.BorderSite, GatewayInstance(peer))
	d.gwEndpoints[peer] = ep
	return ep
}

// BoundaryFlows converts the gateway's live imported summaries into flows
// entering at the border site, with IDs starting at nextID. Peers iterate
// in sorted order and each summary is already deterministically sorted, so
// the same imports always produce the same flow list.
func (d *Domain) BoundaryFlows(nextID int) []traffic.Flow {
	imports := d.GW.ImportedSummaries()
	peers := make([]string, 0, len(imports))
	for name := range imports {
		peers = append(peers, name)
	}
	sort.Strings(peers)
	var flows []traffic.Flow
	for _, peer := range peers {
		src := d.gatewayEndpoint(peer)
		for _, e := range imports[peer] {
			dstSite := topology.SiteID(e.DstSite)
			if int(dstSite) >= d.Topo.NumSites() || dstSite == d.BorderSite {
				continue // summary names a site we don't have; drop the row
			}
			dsts := d.Topo.EndpointsAt(dstSite)
			if len(dsts) == 0 {
				continue
			}
			flows = append(flows, traffic.Flow{
				ID:         nextID,
				Src:        src,
				Dst:        dsts[0],
				Pair:       traffic.SitePair{Src: d.BorderSite, Dst: dstSite},
				DemandMbps: e.Mbps,
				Class:      traffic.Class(e.Class),
				App:        GatewayInstance(peer),
			})
			nextID++
		}
	}
	return flows
}

// RunInterval executes one federated TE interval: fold the imported
// boundary demand into the local matrix, run the controller's solve +
// publish, then refresh the gateway's exports — the demand summaries
// aggregated from Remote and the egress config records the solve produced
// for each peer's inbound traffic. Returns the solve result.
func (d *Domain) RunInterval(local *traffic.Matrix) (*core.Result, error) {
	nextID := 0
	for i := range local.Flows {
		if local.Flows[i].ID >= nextID {
			nextID = local.Flows[i].ID + 1
		}
	}
	boundary := d.BoundaryFlows(nextID)
	combined := local
	if len(boundary) > 0 {
		flows := make([]traffic.Flow, 0, len(local.Flows)+len(boundary))
		flows = append(flows, local.Flows...)
		flows = append(flows, boundary...)
		combined = traffic.NewMatrix(flows)
		combined.Policies = local.Policies
	}

	res, _, err := d.Ctrl.RunInterval(combined)
	if err != nil {
		return nil, fmt.Errorf("federation: domain %s: %w", d.Name, err)
	}

	// Refresh exports from this interval's solve. Configs are rebuilt from
	// the result (RunInterval's own write path already published the
	// intra-domain records; here we only need the gateway instances).
	configs := controlplane.BuildConfigs(d.Topo, combined, res, d.Ctrl.Version())
	peers := make([]string, 0, len(d.gwEndpoints))
	for name := range d.gwEndpoints {
		peers = append(peers, name)
	}
	sort.Strings(peers)
	for _, peer := range peers {
		var recs []ExportRecord
		if cfg := configs[GatewayInstance(peer)]; cfg != nil {
			recs = append(recs, ExportRecord{Instance: cfg.Instance, Paths: cfg.Paths})
		}
		d.GW.SetExports(peer, recs)
	}
	d.exportSummaries()
	return res, nil
}

// exportSummaries aggregates Remote into one summary per destination
// domain and hands them to the gateway.
func (d *Domain) exportSummaries() {
	domains := make(map[string]bool)
	for _, f := range d.Remote {
		domains[f.DstDomain] = true
	}
	names := make([]string, 0, len(domains))
	for name := range domains {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		d.GW.SetLocalDemand(name, AggregateSummary(d.Remote, name))
	}
}
