package federation

import (
	"bufio"
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"megate/internal/controlplane"
)

func sampleExchange() *Exchange {
	return &Exchange{
		Domain: "east",
		Epoch:  42,
		Summary: []SummaryEntry{
			{DstSite: 0, Class: 1, Mbps: 120.5},
			{DstSite: 3, Class: 2, Mbps: 0.0625},
			{DstSite: 3, Class: 3, Mbps: 900},
		},
		Configs: []ExportRecord{
			{
				Instance: "fedgw:west",
				Paths: []controlplane.PathEntry{
					{DstSite: 3, Hops: []uint32{0, 2, 3}, Tier: 1},
					{DstSite: 5, Hops: []uint32{0, 5}},
				},
			},
		},
	}
}

func TestWireRoundTrip(t *testing.T) {
	ex := sampleExchange()
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := writeExchange(w, ex); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	got, _, err := readExchange(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ex) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, ex)
	}
}

func TestWireEmptyExchange(t *testing.T) {
	ex := &Exchange{Domain: "d0", Epoch: 1}
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := writeExchange(w, ex); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	got, _, err := readExchange(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.Domain != "d0" || got.Epoch != 1 || len(got.Summary) != 0 || len(got.Configs) != 0 {
		t.Fatalf("empty exchange mismatch: %+v", got)
	}
}

func TestWireCurrentAndNone(t *testing.T) {
	ex, epoch, err := readExchange(bufio.NewReader(strings.NewReader("CURRENT 17\n")))
	if err != nil || ex != nil || epoch != 17 {
		t.Fatalf("CURRENT = %v, %d, %v", ex, epoch, err)
	}
	_, _, err = readExchange(bufio.NewReader(strings.NewReader("NONE\n")))
	if !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("NONE err = %v, want ErrUnknownPeer", err)
	}
	_, _, err = readExchange(bufio.NewReader(strings.NewReader("ERR boom\n")))
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("ERR err = %v", err)
	}
}

// TestWireBounds feeds hostile headers and rows: every oversized count, bad
// token, or malformed number must fail cleanly instead of driving an
// allocation or a panic.
func TestWireBounds(t *testing.T) {
	cases := []string{
		"",
		"\n",
		"SUMMARY\n",
		"SUMMARY east notanumber 0 0\n",
		"SUMMARY east 1 -1 0\n",
		"SUMMARY east 1 99999999999 0\n",          // summary count over bound
		"SUMMARY east 1 0 99999999999\n",          // config count over bound
		"SUMMARY east 1 1 0\nX 1 2 3\n",           // bad row tag
		"SUMMARY east 1 1 0\nD 1 9 3\n",           // class out of range
		"SUMMARY east 1 1 0\nD 1 2 NaN\n",         // non-finite demand
		"SUMMARY east 1 1 0\nD 1 2 -5\n",          // negative demand
		"SUMMARY east 1 1 0\nD 99999999999 2 3\n", // site over uint32
		"SUMMARY east 1 0 1\nC ins 99999999999\n", // path count over bound
		"SUMMARY east 1 0 1\nC ins 1\nP 1 2\n",    // short path line
		"SUMMARY east 1 0 1\nC ins 1\nP 1 2 x,y\n",
		"SUMMARY east 1 0 1\nC 1\n",
		"SUMMARY " + strings.Repeat("a", MaxNameLen+1) + " 1 0 0\n",
		"CURRENT\n",
		"CURRENT x\n",
		"WHAT 1\n",
		"SUMMARY east 1 2 0\nD 1 2 3\n", // truncated body
	}
	for _, in := range cases {
		if ex, _, err := readExchange(bufio.NewReader(strings.NewReader(in))); err == nil && ex != nil && in != "" {
			// Only a complete well-formed SUMMARY may parse.
			t.Errorf("input %q parsed unexpectedly: %+v", in, ex)
		}
	}
	// Hop-count bound: one path line with MaxHopsPerPath+1 hops.
	hops := strings.TrimSuffix(strings.Repeat("1,", MaxHopsPerPath+1), ",")
	in := "SUMMARY east 1 0 1\nC ins 1\nP 1 0 " + hops + "\n"
	if _, _, err := readExchange(bufio.NewReader(strings.NewReader(in))); err == nil {
		t.Error("over-bound hop list parsed unexpectedly")
	}
}

func TestAggregateSummary(t *testing.T) {
	flows := []RemoteFlow{
		{SrcSite: 0, DstDomain: "west", DstSite: 2, Class: 1, Mbps: 10},
		{SrcSite: 1, DstDomain: "west", DstSite: 2, Class: 1, Mbps: 5},
		{SrcSite: 0, DstDomain: "west", DstSite: 2, Class: 3, Mbps: 7},
		{SrcSite: 0, DstDomain: "west", DstSite: 1, Class: 2, Mbps: 3},
		{SrcSite: 0, DstDomain: "north", DstSite: 2, Class: 1, Mbps: 99}, // other domain
		{SrcSite: 0, DstDomain: "west", DstSite: 4, Class: 1, Mbps: 0},   // zero demand dropped
	}
	got := AggregateSummary(flows, "west")
	want := []SummaryEntry{
		{DstSite: 1, Class: 2, Mbps: 3},
		{DstSite: 2, Class: 1, Mbps: 15},
		{DstSite: 2, Class: 3, Mbps: 7},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("aggregate = %+v, want %+v", got, want)
	}
}
