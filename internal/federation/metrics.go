package federation

import "megate/internal/telemetry"

// Metric names exported by the federation gateway. Counters are per-gateway
// aggregates across all peers; the latency histogram times one full summary
// exchange (dial, PULL, parse, import).
const (
	// MetricSummaryExports counts PULL requests this gateway answered with a
	// SUMMARY payload (the server side of an exchange).
	MetricSummaryExports = "megate_federation_summary_exports_total"
	// MetricSummaryImports counts successful imports of a peer's summary
	// (the client side; CURRENT answers count too — the peer was reachable).
	MetricSummaryImports = "megate_federation_summary_imports_total"
	// MetricStaleFallbacks counts peers whose imported state was dropped
	// after StaleAfter consecutive failed exchanges — each increment is one
	// cross-domain fallback to conventional routing (§6.3).
	MetricStaleFallbacks = "megate_federation_stale_fallbacks_total"
	// MetricExchangeSeconds is the summary-exchange latency histogram.
	MetricExchangeSeconds = "megate_federation_exchange_seconds"
)

// RegisterMetrics pre-registers the federation metric inventory in r so
// scrapes see the full name set before the first exchange.
func RegisterMetrics(r *telemetry.Registry) {
	newFedMetrics(r)
}

type fedMetrics struct {
	exports        *telemetry.Counter
	imports        *telemetry.Counter
	staleFallbacks *telemetry.Counter
	exchange       *telemetry.Histogram
}

func newFedMetrics(r *telemetry.Registry) *fedMetrics {
	return &fedMetrics{
		exports:        r.Counter(MetricSummaryExports),
		imports:        r.Counter(MetricSummaryImports),
		staleFallbacks: r.Counter(MetricStaleFallbacks),
		exchange:       r.Histogram(MetricExchangeSeconds, telemetry.TimeBuckets),
	}
}
