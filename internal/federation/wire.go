package federation

import (
	"bufio"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"

	"megate/internal/controlplane"
)

// Gateway wire protocol, one exchange per request:
//
//	client: PULL <domain> <since>
//	server: SUMMARY <domain> <epoch> <nsum> <ncfg>
//	        nsum  × D <dstSite> <class> <mbps>
//	        ncfg  × C <instance> <npaths>
//	                  npaths × P <dstSite> <tier> <h0,h1,...>
//	   or:  CURRENT <epoch>         (since >= epoch: nothing new)
//	   or:  NONE                    (unknown peer)
//	   or:  ERR <message>
//
// <domain> in PULL names the *requesting* domain: the server answers with
// its state toward that domain. Every count and token is bounds-checked on
// decode (the kvstore Get discipline) so a corrupt or hostile peer cannot
// drive allocations.

// Decode bounds. A domain summary is per-(site,class) and a config set is
// per-gateway-instance, so these are generous for any real topology while
// keeping a malicious length field harmless.
const (
	MaxSummaryEntries = 1 << 20
	MaxConfigs        = 1 << 20
	MaxPathsPerConfig = 1 << 16
	MaxHopsPerPath    = 256
	MaxNameLen        = 256
)

// ErrUnknownPeer is returned by an exchange when the server does not know
// the requesting domain.
var ErrUnknownPeer = errors.New("federation: unknown peer")

// writeExchange emits a full SUMMARY response. The caller flushes.
func writeExchange(w *bufio.Writer, ex *Exchange) error {
	if _, err := fmt.Fprintf(w, "SUMMARY %s %d %d %d\n", ex.Domain, ex.Epoch, len(ex.Summary), len(ex.Configs)); err != nil {
		return err
	}
	for _, e := range ex.Summary {
		if _, err := fmt.Fprintf(w, "D %d %d %s\n", e.DstSite, e.Class, strconv.FormatFloat(e.Mbps, 'g', -1, 64)); err != nil {
			return err
		}
	}
	for _, c := range ex.Configs {
		if _, err := fmt.Fprintf(w, "C %s %d\n", c.Instance, len(c.Paths)); err != nil {
			return err
		}
		for _, p := range c.Paths {
			if _, err := fmt.Fprintf(w, "P %d %d %s\n", p.DstSite, p.Tier, joinHops(p.Hops)); err != nil {
				return err
			}
		}
	}
	return nil
}

func joinHops(hops []uint32) string {
	if len(hops) == 0 {
		return "-"
	}
	var b strings.Builder
	for i, h := range hops {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatUint(uint64(h), 10))
	}
	return b.String()
}

func splitHops(s string) ([]uint32, error) {
	if s == "-" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) > MaxHopsPerPath {
		return nil, fmt.Errorf("federation: %d hops exceeds bound", len(parts))
	}
	hops := make([]uint32, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("federation: bad hop %q", p)
		}
		hops[i] = uint32(v)
	}
	return hops, nil
}

// readExchange parses a server response. It returns (ex, 0, nil) on
// SUMMARY, (nil, epoch, nil) on CURRENT, (nil, 0, ErrUnknownPeer) on NONE
// and an error otherwise.
func readExchange(r *bufio.Reader) (*Exchange, uint64, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return nil, 0, err
	}
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) == 0 {
		return nil, 0, errors.New("federation: empty response")
	}
	switch strings.ToUpper(fields[0]) {
	case "CURRENT":
		if len(fields) != 2 {
			return nil, 0, errors.New("federation: bad CURRENT")
		}
		epoch, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return nil, 0, errors.New("federation: bad CURRENT epoch")
		}
		return nil, epoch, nil
	case "NONE":
		return nil, 0, ErrUnknownPeer
	case "ERR":
		return nil, 0, fmt.Errorf("federation: server error: %s", strings.TrimSpace(strings.TrimPrefix(line, fields[0])))
	case "SUMMARY":
		// fall through below
	default:
		return nil, 0, fmt.Errorf("federation: unexpected response %q", fields[0])
	}
	if len(fields) != 5 {
		return nil, 0, errors.New("federation: bad SUMMARY header")
	}
	ex := &Exchange{Domain: fields[1]}
	if err := checkName(ex.Domain); err != nil {
		return nil, 0, err
	}
	epoch, err := strconv.ParseUint(fields[2], 10, 64)
	if err != nil {
		return nil, 0, errors.New("federation: bad epoch")
	}
	ex.Epoch = epoch
	nsum, err := parseCount(fields[3], MaxSummaryEntries)
	if err != nil {
		return nil, 0, fmt.Errorf("federation: summary count: %w", err)
	}
	ncfg, err := parseCount(fields[4], MaxConfigs)
	if err != nil {
		return nil, 0, fmt.Errorf("federation: config count: %w", err)
	}
	for i := 0; i < nsum; i++ {
		e, err := readSummaryLine(r)
		if err != nil {
			return nil, 0, err
		}
		ex.Summary = append(ex.Summary, e)
	}
	for i := 0; i < ncfg; i++ {
		c, err := readConfigBlock(r)
		if err != nil {
			return nil, 0, err
		}
		ex.Configs = append(ex.Configs, c)
	}
	return ex, 0, nil
}

func readSummaryLine(r *bufio.Reader) (SummaryEntry, error) {
	var e SummaryEntry
	line, err := r.ReadString('\n')
	if err != nil {
		return e, err
	}
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) != 4 || strings.ToUpper(fields[0]) != "D" {
		return e, errors.New("federation: bad summary line")
	}
	site, err := strconv.ParseUint(fields[1], 10, 32)
	if err != nil {
		return e, errors.New("federation: bad summary site")
	}
	class, err := strconv.ParseUint(fields[2], 10, 8)
	if err != nil || class < 1 || class > 3 {
		return e, errors.New("federation: bad summary class")
	}
	mbps, err := strconv.ParseFloat(fields[3], 64)
	if err != nil || math.IsNaN(mbps) || math.IsInf(mbps, 0) || mbps < 0 {
		return e, errors.New("federation: bad summary demand")
	}
	e.DstSite = uint32(site)
	e.Class = uint8(class)
	e.Mbps = mbps
	return e, nil
}

func readConfigBlock(r *bufio.Reader) (ExportRecord, error) {
	var c ExportRecord
	line, err := r.ReadString('\n')
	if err != nil {
		return c, err
	}
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) != 3 || strings.ToUpper(fields[0]) != "C" {
		return c, errors.New("federation: bad config header")
	}
	if err := checkName(fields[1]); err != nil {
		return c, err
	}
	c.Instance = fields[1]
	npaths, err := parseCount(fields[2], MaxPathsPerConfig)
	if err != nil {
		return c, fmt.Errorf("federation: path count: %w", err)
	}
	for i := 0; i < npaths; i++ {
		line, err := r.ReadString('\n')
		if err != nil {
			return c, err
		}
		pf := strings.Fields(strings.TrimSpace(line))
		if len(pf) != 4 || strings.ToUpper(pf[0]) != "P" {
			return c, errors.New("federation: bad path line")
		}
		site, err := strconv.ParseUint(pf[1], 10, 32)
		if err != nil {
			return c, errors.New("federation: bad path site")
		}
		tier, err := strconv.ParseUint(pf[2], 10, 8)
		if err != nil {
			return c, errors.New("federation: bad path tier")
		}
		hops, err := splitHops(pf[3])
		if err != nil {
			return c, err
		}
		c.Paths = append(c.Paths, controlplane.PathEntry{DstSite: uint32(site), Tier: uint8(tier), Hops: hops})
	}
	return c, nil
}

// parseCount parses a nonnegative count with an upper bound, the kvstore
// "bad length" discipline: a hostile count is rejected before any
// allocation sized by it.
func parseCount(s string, max int) (int, error) {
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 || n > max {
		return 0, fmt.Errorf("bad count %q", s)
	}
	return n, nil
}

// checkName validates a domain or instance token: non-empty, bounded, and
// free of whitespace/control bytes (it travels inside a space-separated
// line).
func checkName(s string) error {
	if s == "" || len(s) > MaxNameLen {
		return errors.New("federation: bad name length")
	}
	for i := 0; i < len(s); i++ {
		if s[i] <= ' ' || s[i] == 0x7f {
			return errors.New("federation: bad name byte")
		}
	}
	return nil
}
