package federation

import (
	"bufio"
	"bytes"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"megate/internal/telemetry"
)

// FuzzFederationWire throws arbitrary byte streams at both sides of the
// federation wire protocol: the response parser (readExchange) and the
// gateway's PULL handler over an in-memory connection. The properties under
// test: neither side panics, counts are bounded before allocation (the
// kvstore "bad length" discipline), the handler terminates once the client
// closes, and a gateway that survived a hostile session still answers a
// well-formed PULL.
func FuzzFederationWire(f *testing.F) {
	// Valid payloads first so the fuzzer starts from the grammar.
	f.Add([]byte("SUMMARY east 7 2 1\nD 2 1 50\nD 4 2 12.5\nC fedgw:west 2\nP 2 1 0,1,2\nP 5 0 -\n"))
	f.Add([]byte("SUMMARY east 1 0 0\n"))
	f.Add([]byte("CURRENT 42\n"))
	f.Add([]byte("NONE\n"))
	f.Add([]byte("ERR boom\n"))
	// Hostile shapes: oversized counts, bad tags, truncations, control bytes.
	f.Add([]byte("SUMMARY east 1 99999999999 0\n"))
	f.Add([]byte("SUMMARY east 1 1 0\nD 1 9 NaN\n"))
	f.Add([]byte("SUMMARY east 1 0 1\nC ins 1\nP 1 2 x,y\n"))
	f.Add([]byte("PULL west 0\nPULL west notanumber\nPULL\n"))
	f.Add([]byte("pull west 0\nPULL " + strings.Repeat("a", MaxNameLen+1) + " 0\n"))
	f.Add([]byte("\x00\xff\n\n\nSUMMARY\nWHAT 1\nCURRENT x\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Client side: parse the bytes as a PULL response. Must never panic;
		// errors are the expected outcome for almost every input.
		ex, _, err := readExchange(bufio.NewReader(bytes.NewReader(data)))
		if err == nil && ex != nil {
			// A parsed exchange must respect the declared bounds.
			if len(ex.Summary) > MaxSummaryEntries || len(ex.Configs) > MaxConfigs {
				t.Fatalf("parsed exchange over bounds: %d summaries, %d configs", len(ex.Summary), len(ex.Configs))
			}
			for _, rec := range ex.Configs {
				if len(rec.Paths) > MaxPathsPerConfig {
					t.Fatalf("parsed config over path bound: %d", len(rec.Paths))
				}
			}
		}

		// Server side: the same bytes as a request stream into the handler.
		gw := &Gateway{Domain: "east", Metrics: telemetry.NewRegistry()}
		gw.AddPeer("west", "")
		gw.SetLocalDemand("west", []SummaryEntry{{DstSite: 2, Class: 1, Mbps: 50}})
		cli, srv := net.Pipe()
		gw.conns = map[net.Conn]struct{}{srv: {}}
		gw.wg.Add(1)
		go gw.handle(srv)

		// Drain responses so the unbuffered pipe never backpressures the
		// handler; joined before the post-session check.
		drained := make(chan struct{})
		go func() {
			defer close(drained)
			_, _ = io.Copy(io.Discard, cli)
		}()
		_ = cli.SetDeadline(time.Now().Add(5 * time.Second))
		_, _ = cli.Write(data)
		_ = cli.Close()
		gw.wg.Wait()
		<-drained

		// The gateway must remain usable: a clean PULL still gets a SUMMARY.
		cli2, srv2 := net.Pipe()
		gw.conns[srv2] = struct{}{}
		gw.wg.Add(1)
		go gw.handle(srv2)
		_ = cli2.SetDeadline(time.Now().Add(5 * time.Second))
		if _, err := io.WriteString(cli2, "PULL west 0\n"); err != nil {
			t.Fatalf("post-session write: %v", err)
		}
		got, _, err := readExchange(bufio.NewReader(cli2))
		if err != nil || got == nil || got.Domain != "east" {
			t.Fatalf("gateway unusable after fuzzed session: %+v %v", got, err)
		}
		_ = cli2.Close()
		gw.wg.Wait()
	})
}
