package federation

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"megate/internal/controlplane"
	"megate/internal/telemetry"
)

// FedStore is the gateway's write interface to the local TE database for
// imported fed/ records. controlplane.StoreAdapter and ClientAdapter both
// satisfy it; crucially it has no PublishVersion — imported state never
// advances the intra-domain config version.
type FedStore interface {
	PutConfig(key string, value []byte) error
	DeleteConfig(key string) error
}

// Gateway is one domain's east-west federation endpoint: it serves PULL
// requests from peer gateways with the local domain's exported state, and
// pulls each peer's state in turn, importing summaries as boundary demand
// and publishing exported config records under fed/ in the local database.
//
// Staleness mirrors the agent's StaleAfter TTL (§6.3): after StaleAfter
// consecutive failed exchanges with a peer, everything imported from it is
// dropped — fed/ records deleted, boundary demand removed — so cross-domain
// flows fall back to conventional routing while intra-domain TE continues.
// The next successful exchange reimports and republishes in full.
type Gateway struct {
	// Domain is the local domain name, sent in PULL requests so the peer
	// knows which export set to answer with.
	Domain string
	// StaleAfter is the consecutive-failure TTL; default 3.
	StaleAfter int
	// Timeout bounds one exchange's dial + I/O; default 2s.
	Timeout time.Duration
	// Dialer opens the transport to a peer address; nil uses net.DialTimeout
	// over TCP. The chaos scenarios inject a faultnet dialer here.
	Dialer func(addr string, timeout time.Duration) (net.Conn, error)
	// Store receives imported fed/ records; nil disables publication (the
	// summaries are still imported for the local solve).
	Store FedStore
	// Metrics routes the gateway's counters; nil uses telemetry.Default.
	Metrics *telemetry.Registry

	mOnce sync.Once
	m     *fedMetrics

	mu         sync.Mutex
	epoch      uint64
	outSummary map[string][]SummaryEntry
	outConfigs map[string][]ExportRecord
	peers      map[string]*peerState

	srvMu     sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	closed    bool
	wg        sync.WaitGroup
}

// peerState tracks one peer's imported state and its staleness TTL.
type peerState struct {
	addr      string
	fails     int
	stale     bool
	epoch     uint64
	summary   []SummaryEntry
	published map[string]bool
}

func (g *Gateway) metrics() *fedMetrics {
	g.mOnce.Do(func() {
		reg := g.Metrics
		if reg == nil {
			reg = telemetry.Default
		}
		g.m = newFedMetrics(reg)
	})
	return g.m
}

func (g *Gateway) staleAfter() int {
	if g.StaleAfter <= 0 {
		return 3
	}
	return g.StaleAfter
}

func (g *Gateway) timeout() time.Duration {
	if g.Timeout <= 0 {
		return 2 * time.Second
	}
	return g.Timeout
}

func (g *Gateway) dial(addr string) (net.Conn, error) {
	if g.Dialer != nil {
		return g.Dialer(addr, g.timeout())
	}
	return net.DialTimeout("tcp", addr, g.timeout())
}

// AddPeer registers a peer domain and the address of its gateway. Only
// registered peers are answered on the serving side and pulled by
// ExchangeAll.
func (g *Gateway) AddPeer(name, addr string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.peers == nil {
		g.peers = make(map[string]*peerState)
	}
	if p, ok := g.peers[name]; ok {
		p.addr = addr
		return
	}
	g.peers[name] = &peerState{addr: addr}
}

// SetLocalDemand replaces the demand summary this gateway exports toward a
// peer and bumps the export epoch.
func (g *Gateway) SetLocalDemand(peer string, entries []SummaryEntry) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.outSummary == nil {
		g.outSummary = make(map[string][]SummaryEntry)
	}
	g.outSummary[peer] = append([]SummaryEntry(nil), entries...)
	g.epoch++
}

// SetExports replaces the egress config records this gateway exports toward
// a peer (the local solve's paths for the peer's inbound traffic) and bumps
// the export epoch.
func (g *Gateway) SetExports(peer string, recs []ExportRecord) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.outConfigs == nil {
		g.outConfigs = make(map[string][]ExportRecord)
	}
	g.outConfigs[peer] = append([]ExportRecord(nil), recs...)
	g.epoch++
}

// Epoch returns the current export epoch.
func (g *Gateway) Epoch() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.epoch
}

// Start serves PULL requests on l in a background goroutine joined by
// Close.
func (g *Gateway) Start(l net.Listener) {
	g.srvMu.Lock()
	if g.closed {
		g.srvMu.Unlock()
		_ = l.Close()
		return
	}
	if g.listeners == nil {
		g.listeners = make(map[net.Listener]struct{})
		g.conns = make(map[net.Conn]struct{})
	}
	g.listeners[l] = struct{}{}
	g.wg.Add(1)
	g.srvMu.Unlock()
	go func() {
		defer g.wg.Done()
		_ = g.serve(l)
	}()
}

// serve answers PULL requests on l until Close; it returns the accept error
// after Close.
func (g *Gateway) serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		g.srvMu.Lock()
		if g.closed {
			g.srvMu.Unlock()
			_ = conn.Close()
			return errors.New("federation: gateway closed")
		}
		g.conns[conn] = struct{}{}
		g.wg.Add(1)
		g.srvMu.Unlock()
		go g.handle(conn)
	}
}

// Close stops serving: listeners and in-flight connections are closed and
// their handlers joined. The sockets are collected under srvMu but closed
// after it is released, so a blocked peer cannot stall other holders.
func (g *Gateway) Close() {
	g.srvMu.Lock()
	g.closed = true
	listeners := make([]net.Listener, 0, len(g.listeners))
	for l := range g.listeners {
		listeners = append(listeners, l)
	}
	conns := make([]net.Conn, 0, len(g.conns))
	for c := range g.conns {
		conns = append(conns, c)
	}
	g.srvMu.Unlock()
	for _, l := range listeners {
		_ = l.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	g.wg.Wait()
}

// handle serves one peer connection: any number of PULL requests, one
// response each.
func (g *Gateway) handle(conn net.Conn) {
	defer func() {
		_ = conn.Close()
		g.srvMu.Lock()
		delete(g.conns, conn)
		g.srvMu.Unlock()
		g.wg.Done()
	}()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		fields := strings.Fields(strings.TrimSpace(line))
		if len(fields) == 0 {
			continue
		}
		if strings.ToUpper(fields[0]) != "PULL" || len(fields) != 3 {
			fmt.Fprintf(w, "ERR usage: PULL <domain> <since>\n")
		} else if err := checkName(fields[1]); err != nil {
			fmt.Fprintf(w, "ERR bad domain\n")
		} else if since, err := strconv.ParseUint(fields[2], 10, 64); err != nil {
			fmt.Fprintf(w, "ERR bad since\n")
		} else {
			g.answer(w, fields[1], since)
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// answer writes the response for one PULL from domain with last-seen epoch
// since.
func (g *Gateway) answer(w *bufio.Writer, domain string, since uint64) {
	g.mu.Lock()
	_, known := g.peers[domain]
	epoch := g.epoch
	var ex *Exchange
	if known && epoch > since {
		ex = &Exchange{
			Domain:  g.Domain,
			Epoch:   epoch,
			Summary: append([]SummaryEntry(nil), g.outSummary[domain]...),
			Configs: append([]ExportRecord(nil), g.outConfigs[domain]...),
		}
	}
	g.mu.Unlock()
	switch {
	case !known:
		fmt.Fprintf(w, "NONE\n")
	case ex == nil:
		fmt.Fprintf(w, "CURRENT %d\n", epoch)
	default:
		if writeExchange(w, ex) == nil {
			g.metrics().exports.Inc()
		}
	}
}

// Exchange pulls one peer's state: its summary toward this domain and the
// egress config records it computed for our traffic. Success resets the
// peer's failure TTL and (re)publishes; failure advances the TTL and, at
// StaleAfter, drops everything imported from the peer.
func (g *Gateway) Exchange(peer string) error {
	g.mu.Lock()
	p, ok := g.peers[peer]
	if !ok {
		g.mu.Unlock()
		return fmt.Errorf("federation: peer %q not registered", peer)
	}
	addr, since := p.addr, p.epoch
	g.mu.Unlock()

	start := time.Now()
	err := g.exchangeOnce(peer, addr, since)
	if err != nil {
		g.noteFail(peer)
		return err
	}
	g.metrics().imports.Inc()
	g.metrics().exchange.Observe(time.Since(start).Seconds())
	return nil
}

// exchangeOnce performs the wire round trip and imports the answer.
func (g *Gateway) exchangeOnce(peer, addr string, since uint64) error {
	conn, err := g.dial(addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(g.timeout()))
	w := bufio.NewWriter(conn)
	if _, err := fmt.Fprintf(w, "PULL %s %d\n", g.Domain, since); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	ex, _, err := readExchange(bufio.NewReader(conn))
	if err != nil {
		return err
	}
	if ex == nil {
		// CURRENT: the peer is reachable and nothing moved since our last
		// import; the TTL resets but there is nothing to republish.
		g.mu.Lock()
		g.peers[peer].fails = 0
		g.mu.Unlock()
		return nil
	}
	return g.importExchange(peer, ex)
}

// importExchange installs a pulled payload: boundary summary in memory,
// config records under fed/<peer>/ in the local store, epoch marker last.
func (g *Gateway) importExchange(peer string, ex *Exchange) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	p := g.peers[peer]
	p.fails = 0
	p.stale = false
	p.epoch = ex.Epoch
	p.summary = append(p.summary[:0], ex.Summary...)

	if g.Store == nil {
		return nil
	}
	next := make(map[string]bool, len(ex.Configs))
	for _, rec := range ex.Configs {
		cfg := controlplane.InstanceConfig{Instance: rec.Instance, Version: ex.Epoch, Paths: rec.Paths}
		data, err := json.Marshal(cfg)
		if err != nil {
			return fmt.Errorf("federation: marshal %s: %w", rec.Instance, err)
		}
		if err := g.Store.PutConfig(FedKey(peer, rec.Instance), data); err != nil {
			return fmt.Errorf("federation: publish %s: %w", rec.Instance, err)
		}
		next[rec.Instance] = true
	}
	retired := make([]string, 0, len(p.published))
	for ins := range p.published {
		if !next[ins] {
			retired = append(retired, ins)
		}
	}
	sort.Strings(retired)
	for _, ins := range retired {
		if err := g.Store.DeleteConfig(FedKey(peer, ins)); err != nil {
			return fmt.Errorf("federation: retire %s: %w", ins, err)
		}
	}
	p.published = next
	if err := g.Store.PutConfig(FedEpochKey(peer), []byte(strconv.FormatUint(ex.Epoch, 10))); err != nil {
		return fmt.Errorf("federation: publish epoch: %w", err)
	}
	return nil
}

// noteFail advances a peer's failure TTL; crossing StaleAfter drops its
// imported state (the cross-domain fallback of §6.3).
func (g *Gateway) noteFail(peer string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	p := g.peers[peer]
	p.fails++
	if p.fails < g.staleAfter() || p.stale {
		return
	}
	p.stale = true
	p.epoch = 0
	p.summary = nil
	if g.Store != nil {
		dropped := make([]string, 0, len(p.published))
		for ins := range p.published {
			dropped = append(dropped, ins)
		}
		sort.Strings(dropped)
		for _, ins := range dropped {
			_ = g.Store.DeleteConfig(FedKey(peer, ins))
		}
		_ = g.Store.DeleteConfig(FedEpochKey(peer))
	}
	p.published = nil
	g.metrics().staleFallbacks.Inc()
}

// ExchangeAll pulls every registered peer in sorted name order (so fault
// timelines replay deterministically) and joins the per-peer errors.
func (g *Gateway) ExchangeAll() error {
	g.mu.Lock()
	names := make([]string, 0, len(g.peers))
	for name := range g.peers {
		names = append(names, name)
	}
	g.mu.Unlock()
	sort.Strings(names)
	var errs []error
	for _, name := range names {
		if err := g.Exchange(name); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", name, err))
		}
	}
	return errors.Join(errs...)
}

// Exports returns a copy of the config records currently exported toward a
// peer — what the peer's next PULL will receive. Scenario checks compare
// these against the bytes the peer actually published under fed/.
func (g *Gateway) Exports(peer string) []ExportRecord {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]ExportRecord(nil), g.outConfigs[peer]...)
}

// ImportedSummaries returns a deep copy of every live (non-stale) peer's
// imported demand summary, keyed by peer name — the boundary commodities
// the domain folds into its next solve.
func (g *Gateway) ImportedSummaries() map[string][]SummaryEntry {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[string][]SummaryEntry, len(g.peers))
	for name, p := range g.peers {
		if p.stale || len(p.summary) == 0 {
			continue
		}
		out[name] = append([]SummaryEntry(nil), p.summary...)
	}
	return out
}

// PeerStale reports whether a peer's TTL has fired and its imported state
// has been dropped.
func (g *Gateway) PeerStale(peer string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	p, ok := g.peers[peer]
	return ok && p.stale
}

// ImportedEpoch returns the last imported epoch of a peer (0 when never
// imported or dropped).
func (g *Gateway) ImportedEpoch(peer string) uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	p, ok := g.peers[peer]
	if !ok {
		return 0
	}
	return p.epoch
}
