// Package telemetry is MegaTE's stdlib-only metrics layer: lock-free
// counters, gauges and fixed-bucket histograms collected in a named
// registry, exported over HTTP in Prometheus text format and as JSON
// snapshots (see export.go).
//
// The paper's evaluation judges the control loop on *measured*
// distributions — database op latency (Figure 13), synchronization traffic
// (Figure 14), solve-time breakdowns (Table 3) — so the running system has
// to export them instead of recomputing them in one-off bench code. Every
// instrument is safe for concurrent use: counters and histogram buckets are
// atomic adds, gauges store float64 bits behind a CAS, and the registry
// serializes only metric creation, never the hot update path.
//
// Metrics are identified by a base name plus an optional ordered label set
// ("op"="get"). Registration is get-or-create, so independent components
// naming the same series share one instrument, and daemons can pre-register
// the full inventory at startup so scrapes see zero-valued series before
// the first event.
package telemetry

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Default is the process-wide registry the daemons export. Components take
// an optional *Registry and fall back to Default when it is nil, so library
// tests can isolate themselves with NewRegistry while megate-controller,
// megate-agent and megate-sim share one scrape surface.
var Default = NewRegistry()

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use, so it can live embedded in a struct (the endpoint Agent's
// per-instance counters) as well as inside a Registry.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomically settable float64. The zero value is ready to use.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta under a CAS loop.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed cumulative-style buckets
// (Prometheus semantics: bucket i counts observations <= Upper[i], with an
// implicit +Inf bucket at the end). Observations are two atomic adds and a
// CAS on the running sum — no locks on the observe path.
type Histogram struct {
	upper   []float64
	counts  []atomic.Uint64 // len(upper)+1; last is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// NewHistogram builds a histogram over ascending bucket upper bounds. An
// empty bounds slice yields a single +Inf bucket (count/sum only).
func NewHistogram(bounds []float64) *Histogram {
	upper := make([]float64, len(bounds))
	copy(upper, bounds)
	sort.Float64s(upper)
	return &Histogram{upper: upper, counts: make([]atomic.Uint64, len(upper)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// First bucket whose upper bound admits v; the sentinel +Inf bucket
	// takes everything beyond the last bound.
	i := sort.SearchFloat64s(h.upper, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Buckets returns the upper bounds and the cumulative count at each bound,
// ending with the +Inf bucket (whose bound is math.Inf(1)).
func (h *Histogram) Buckets() (bounds []float64, cumulative []uint64) {
	bounds = make([]float64, len(h.upper)+1)
	copy(bounds, h.upper)
	bounds[len(h.upper)] = math.Inf(1)
	cumulative = make([]uint64, len(h.counts))
	total := uint64(0)
	for i := range h.counts {
		total += h.counts[i].Load()
		cumulative[i] = total
	}
	return bounds, cumulative
}

// Quantile returns an upper-bound estimate of the q-quantile (0..1): the
// smallest bucket bound whose cumulative count reaches q of the total, or
// +Inf when the tail bucket is needed. Good enough for report lines; the
// exporter ships the full bucket vector for anything finer.
func (h *Histogram) Quantile(q float64) float64 {
	bounds, cum := h.Buckets()
	total := cum[len(cum)-1]
	if total == 0 {
		return math.NaN()
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	for i, c := range cum {
		if c >= rank {
			return bounds[i]
		}
	}
	return math.Inf(1)
}

// kind discriminates the instrument behind a registry entry.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// entry is one registered instrument.
type entry struct {
	name   string // base name, e.g. megate_kvstore_server_ops_total
	labels string // pre-formatted, e.g. `op="get"`, empty for none
	kind   kind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry is a named collection of instruments. Creation (Counter, Gauge,
// Histogram) is get-or-create under a mutex; updates on the returned
// instruments are lock-free.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry // key: name + "{" + labels + "}"
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// fmtLabels renders ("op", "get", "peer", "db0") as `op="get",peer="db0"`.
// Pairs keep their given order so callers produce a deterministic series
// identity; values are escaped for the Prometheus text format.
func fmtLabels(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	if len(pairs)%2 != 0 {
		panic(fmt.Sprintf("telemetry: odd label list %q", pairs))
	}
	var b strings.Builder
	for i := 0; i < len(pairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		v := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`).Replace(pairs[i+1])
		fmt.Fprintf(&b, `%s=%q`, pairs[i], v)
	}
	return b.String()
}

// lookup get-or-creates the entry for the series and initializes its
// instrument while still holding the registry mutex — concurrent first
// touches of the same series must both return the one instrument.
func (r *Registry) lookup(name string, labels []string, k kind, init func(*entry)) *entry {
	ls := fmtLabels(labels)
	key := name + "{" + ls + "}"
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[key]; ok {
		if e.kind != k {
			panic(fmt.Sprintf("telemetry: %s registered as %s, requested as %s", key, e.kind, k))
		}
		return e
	}
	e := &entry{name: name, labels: ls, kind: k}
	init(e)
	r.entries[key] = e
	return e
}

// Counter returns the counter for name and the ordered label pairs,
// creating it on first use.
func (r *Registry) Counter(name string, labelPairs ...string) *Counter {
	return r.lookup(name, labelPairs, kindCounter, func(e *entry) { e.c = &Counter{} }).c
}

// Gauge returns the gauge for name and the ordered label pairs, creating it
// on first use.
func (r *Registry) Gauge(name string, labelPairs ...string) *Gauge {
	return r.lookup(name, labelPairs, kindGauge, func(e *entry) { e.g = &Gauge{} }).g
}

// Histogram returns the histogram for name and the ordered label pairs,
// creating it with the given bucket bounds on first use (a later caller's
// bounds are ignored — the first registration wins).
func (r *Registry) Histogram(name string, bounds []float64, labelPairs ...string) *Histogram {
	return r.lookup(name, labelPairs, kindHistogram, func(e *entry) { e.h = NewHistogram(bounds) }).h
}

// Bucket is one cumulative histogram bucket in a snapshot.
type Bucket struct {
	Upper float64 `json:"le"`
	Count uint64  `json:"count"`
}

// MarshalJSON renders the overflow bucket's +Inf bound as the string
// "+Inf" — encoding/json refuses infinite float64s, and without this the
// whole /metrics.json snapshot fails to encode.
func (b Bucket) MarshalJSON() ([]byte, error) {
	if math.IsInf(b.Upper, 1) {
		return json.Marshal(struct {
			Upper string `json:"le"`
			Count uint64 `json:"count"`
		}{"+Inf", b.Count})
	}
	return json.Marshal(struct {
		Upper float64 `json:"le"`
		Count uint64  `json:"count"`
	}{b.Upper, b.Count})
}

// UnmarshalJSON accepts both the numeric bounds and the "+Inf" string
// produced by MarshalJSON.
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var raw struct {
		Upper json.RawMessage `json:"le"`
		Count uint64          `json:"count"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	b.Count = raw.Count
	if len(raw.Upper) > 0 && raw.Upper[0] == '"' {
		var s string
		if err := json.Unmarshal(raw.Upper, &s); err != nil {
			return err
		}
		if s == "+Inf" {
			b.Upper = math.Inf(1)
			return nil
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return fmt.Errorf("telemetry: bucket bound %q: %w", s, err)
		}
		b.Upper = v
		return nil
	}
	return json.Unmarshal(raw.Upper, &b.Upper)
}

// Sample is one instrument's state in a Snapshot.
type Sample struct {
	Name   string   `json:"name"`
	Labels string   `json:"labels,omitempty"`
	Kind   string   `json:"kind"`
	Value  float64  `json:"value,omitempty"` // counters and gauges
	Count  uint64   `json:"count,omitempty"` // histograms
	Sum    float64  `json:"sum,omitempty"`   // histograms
	Bucket []Bucket `json:"buckets,omitempty"`
}

// Snapshot returns every instrument's current state, sorted by name then
// label set, so two snapshots of the same registry diff line-by-line.
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	entries := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.Unlock()
	sort.Slice(entries, func(a, b int) bool {
		if entries[a].name != entries[b].name {
			return entries[a].name < entries[b].name
		}
		return entries[a].labels < entries[b].labels
	})
	out := make([]Sample, 0, len(entries))
	for _, e := range entries {
		s := Sample{Name: e.name, Labels: e.labels, Kind: e.kind.String()}
		switch e.kind {
		case kindCounter:
			s.Value = float64(e.c.Value())
		case kindGauge:
			s.Value = e.g.Value()
		case kindHistogram:
			s.Count = e.h.Count()
			s.Sum = e.h.Sum()
			bounds, cum := e.h.Buckets()
			for i := range bounds {
				s.Bucket = append(s.Bucket, Bucket{Upper: bounds[i], Count: cum[i]})
			}
		}
		out = append(out, s)
	}
	return out
}

// Series renders a sample's full series identity, name{labels}.
func (s Sample) Series() string {
	if s.Labels == "" {
		return s.Name
	}
	return s.Name + "{" + s.Labels + "}"
}

// Quantile estimates the q-quantile (0 < q <= 1) of a histogram sample from
// its cumulative buckets, returning the upper bound of the bucket containing
// the quantile rank (NaN for non-histograms and empty histograms, +Inf when
// the rank falls in the overflow bucket).
func (s Sample) Quantile(q float64) float64 {
	if len(s.Bucket) == 0 || s.Count == 0 {
		return math.NaN()
	}
	rank := q * float64(s.Count)
	for _, b := range s.Bucket {
		if float64(b.Count) >= rank {
			return b.Upper
		}
	}
	return math.Inf(1)
}

// TimeBuckets are the default latency bounds in seconds: 100µs to 10s,
// roughly quadrupling — sub-millisecond short-connection polls land in the
// first buckets, a solver interval in the last.
var TimeBuckets = []float64{0.0001, 0.00025, 0.001, 0.0025, 0.01, 0.025, 0.1, 0.25, 1, 2.5, 10}

// SizeBuckets are the default byte-size bounds: 64 B to 4 MiB.
var SizeBuckets = []float64{64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304}

// CountBuckets are small-integer bounds for lags and retry counts.
var CountBuckets = []float64{0, 1, 2, 4, 8, 16, 32}

// WideCountBuckets are power-of-four integer bounds for counts that range
// from a handful to many thousands — rebalance moved-keys, batch sizes.
var WideCountBuckets = []float64{0, 1, 4, 16, 64, 256, 1024, 4096, 16384}
