package telemetry

import (
	"sync"
	"testing"
)

// TestReadersDuringWritesRace is the regression companion to the
// atomiccheck lint pass: every instrument field the pass certifies as
// atomics-only is read here *while* writers are mutating it, which is the
// schedule a plain read would lose under -race. TestConcurrentInstruments
// covers concurrent writers; this test pins the mixed read/write case —
// Value, Sum, Count, Buckets, Quantile, and full registry Snapshots all
// land mid-write.
func TestReadersDuringWritesRace(t *testing.T) {
	r := NewRegistry()
	const writers, perWriter = 4, 500
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Counter("rw_total").Inc()
				r.Gauge("rw_gauge").Add(0.5)
				r.Histogram("rw_seconds", TimeBuckets).Observe(0.004)
			}
		}()
	}

	var readers sync.WaitGroup
	for g := 0; g < 2; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = r.Counter("rw_total").Value()
				_ = r.Gauge("rw_gauge").Value()
				h := r.Histogram("rw_seconds", TimeBuckets)
				// Count and Sum are two separate atomics: mid-write they may
				// disagree, but each individually must be a value some Observe
				// published, never a torn word.
				_ = h.Count()
				_ = h.Sum()
				_, _ = h.Buckets()
				_ = h.Quantile(0.99)
				for _, s := range r.Snapshot() {
					_ = s.Series()
				}
			}
		}()
	}

	wg.Wait()
	close(stop)
	readers.Wait()

	if got := r.Counter("rw_total").Value(); got != writers*perWriter {
		t.Errorf("counter = %d, want %d", got, writers*perWriter)
	}
	if got := r.Histogram("rw_seconds", TimeBuckets).Count(); got != writers*perWriter {
		t.Errorf("histogram count = %d, want %d", got, writers*perWriter)
	}
	if got := r.Gauge("rw_gauge").Value(); got != float64(writers*perWriter)*0.5 {
		t.Errorf("gauge = %v, want %v", got, float64(writers*perWriter)*0.5)
	}
}
