package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"
)

// WriteText renders the registry in the Prometheus text exposition format:
// one # TYPE line per metric family, histograms expanded into cumulative
// _bucket/_sum/_count series.
func (r *Registry) WriteText(w io.Writer) error {
	lastFamily := ""
	for _, s := range r.Snapshot() {
		if s.Name != lastFamily {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Kind); err != nil {
				return err
			}
			lastFamily = s.Name
		}
		var err error
		switch s.Kind {
		case "histogram":
			for _, b := range s.Bucket {
				le := "+Inf"
				if !math.IsInf(b.Upper, 1) {
					le = formatFloat(b.Upper)
				}
				labels := `le="` + le + `"`
				if s.Labels != "" {
					labels = s.Labels + "," + labels
				}
				if _, err = fmt.Fprintf(w, "%s_bucket{%s} %d\n", s.Name, labels, b.Count); err != nil {
					return err
				}
			}
			if _, err = fmt.Fprintf(w, "%s_sum%s %s\n", s.Name, braced(s.Labels), formatFloat(s.Sum)); err == nil {
				_, err = fmt.Fprintf(w, "%s_count%s %d\n", s.Name, braced(s.Labels), s.Count)
			}
		default:
			_, err = fmt.Fprintf(w, "%s%s %s\n", s.Name, braced(s.Labels), formatFloat(s.Value))
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the snapshot as a JSON array of samples.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// NewMux builds the exporter's HTTP surface over a registry:
//
//	/metrics       Prometheus text format
//	/metrics.json  JSON snapshot
//	/debug/pprof/  the standard net/http/pprof handlers
//
// The pprof wiring means any daemon started with -telemetry-addr can be
// profiled live (CPU, heap, goroutines, contention) with the stock Go
// tooling — the observability story the chaos and perf PRs had no way in to.
func NewMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		// Encode into a buffer first: a marshal failure after headers are
		// written would surface as an empty 200 body, which is worse than a
		// loud 500.
		var buf bytes.Buffer
		if err := r.WriteJSON(&buf); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(buf.Bytes())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running telemetry exporter.
type Server struct {
	l   net.Listener
	srv *http.Server
	wg  sync.WaitGroup
}

// ListenAndServe starts the exporter for registry r on addr (pass host:0
// for an ephemeral port) and returns the running server. Close shuts it
// down and waits for the serve goroutine.
func ListenAndServe(addr string, r *Registry) (*Server, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{l: l, srv: &http.Server{Handler: NewMux(r), ReadHeaderTimeout: 5 * time.Second}}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		// Serve returns ErrServerClosed on Close; nothing to report.
		_ = s.srv.Serve(l)
	}()
	return s, nil
}

// Addr returns the exporter's listen address.
func (s *Server) Addr() string { return s.l.Addr().String() }

// Close stops the exporter and waits for its goroutine.
func (s *Server) Close() error {
	err := s.srv.Close()
	s.wg.Wait()
	return err
}
