package telemetry

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("megate_test_ops_total", "op", "get")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	// Get-or-create: same name+labels yields the same instrument.
	if r.Counter("megate_test_ops_total", "op", "get") != c {
		t.Error("re-registration returned a different counter")
	}
	// Different label value: a distinct series.
	if r.Counter("megate_test_ops_total", "op", "put") == c {
		t.Error("distinct labels share an instrument")
	}

	g := r.Gauge("megate_test_depth")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got < 1.4999 || got > 1.5001 {
		t.Errorf("gauge = %v, want 1.5", got)
	}
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 0.7, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if s := h.Sum(); s < 556.1 || s > 556.3 {
		t.Errorf("sum = %v, want 556.2", s)
	}
	bounds, cum := h.Buckets()
	wantCum := []uint64{2, 3, 4, 5}
	for i, want := range wantCum {
		if cum[i] != want {
			t.Errorf("bucket %v cumulative = %d, want %d", bounds[i], cum[i], want)
		}
	}
	if !math.IsInf(bounds[len(bounds)-1], 1) {
		t.Error("last bound not +Inf")
	}
	// An observation exactly on a bound lands in that bound's bucket.
	h2 := NewHistogram([]float64{1, 10})
	h2.Observe(1)
	_, cum2 := h2.Buckets()
	if cum2[0] != 1 {
		t.Errorf("boundary observation: first bucket = %d, want 1", cum2[0])
	}

	if q := h.Quantile(0.5); q != 10 {
		t.Errorf("p50 = %v, want 10 (upper-bound estimate)", q)
	}
	if q := h.Quantile(1); !math.IsInf(q, 1) {
		t.Errorf("p100 = %v, want +Inf", q)
	}
	if q := NewHistogram(nil).Quantile(0.5); !math.IsNaN(q) {
		t.Errorf("empty histogram quantile = %v, want NaN", q)
	}
}

// TestConcurrentInstruments hammers every instrument type from many
// goroutines; correctness is the exact final tallies plus `-race` silence.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("c_total").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h_seconds", TimeBuckets).Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c_total").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("g").Value(); got != workers*perWorker {
		t.Errorf("gauge = %v, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("h_seconds", TimeBuckets).Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

// TestConcurrentFirstTouch pins the get-or-create race: many goroutines
// released at once all first-touch the same fresh labeled series, which
// must yield exactly one instrument (a duplicate would lose increments).
// Regression test for instrument initialization escaping the registry
// mutex.
func TestConcurrentFirstTouch(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	for round := 0; round < 50; round++ {
		name := "first_touch_total"
		label := "round-" + strconv.Itoa(round)
		start := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				r.Counter(name, "r", label, "i", "0").Inc()
				r.Gauge(name+"_g", "r", label).Add(1)
				r.Histogram(name+"_h", CountBuckets, "r", label).Observe(1)
			}()
		}
		close(start)
		wg.Wait()
		if got := r.Counter(name, "r", label, "i", "0").Value(); got != workers {
			t.Fatalf("round %d: counter = %d, want %d (first touch raced)", round, got, workers)
		}
		if got := r.Histogram(name+"_h", CountBuckets, "r", label).Count(); got != workers {
			t.Fatalf("round %d: histogram count = %d, want %d", round, got, workers)
		}
	}
}

func TestSnapshotSortedAndComplete(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Counter("a_total", "op", "x").Inc()
	r.Counter("a_total", "op", "y").Inc()
	r.Gauge("m_gauge").Set(7)
	r.Histogram("h_seconds", []float64{1}).Observe(0.5)
	snap := r.Snapshot()
	var series []string
	for _, s := range snap {
		series = append(series, s.Series())
	}
	want := []string{`a_total{op="x"}`, `a_total{op="y"}`, "b_total", "h_seconds", "m_gauge"}
	if len(series) != len(want) {
		t.Fatalf("snapshot series %v, want %v", series, want)
	}
	for i := range want {
		if series[i] != want[i] {
			t.Errorf("series[%d] = %s, want %s", i, series[i], want[i])
		}
	}
}

func TestWriteTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("megate_ops_total", "op", "get").Add(3)
	r.Counter("megate_ops_total", "op", "put").Add(1)
	r.Gauge("megate_degraded").Set(2)
	r.Histogram("megate_lat_seconds", []float64{0.01, 0.1}).Observe(0.05)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE megate_ops_total counter",
		`megate_ops_total{op="get"} 3`,
		`megate_ops_total{op="put"} 1`,
		"# TYPE megate_degraded gauge",
		"megate_degraded 2",
		"# TYPE megate_lat_seconds histogram",
		`megate_lat_seconds_bucket{le="0.01"} 0`,
		`megate_lat_seconds_bucket{le="0.1"} 1`,
		`megate_lat_seconds_bucket{le="+Inf"} 1`,
		"megate_lat_seconds_sum 0.05",
		"megate_lat_seconds_count 1",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	// Exactly one TYPE line per family even with several label sets.
	if n := strings.Count(out, "# TYPE megate_ops_total"); n != 1 {
		t.Errorf("TYPE lines for megate_ops_total = %d, want 1", n)
	}
}

func TestHTTPExporterEndToEnd(t *testing.T) {
	r := NewRegistry()
	r.Counter("megate_exporter_test_total").Add(9)
	// A histogram in the registry is load-bearing: its overflow bucket's
	// +Inf bound once broke /metrics.json (encoding/json rejects infinite
	// floats), and only counter-bearing registries were tested.
	r.Histogram("megate_exporter_test_seconds", TimeBuckets).Observe(0.002)
	srv, err := ListenAndServe("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = resp.Body.Close() }()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	if body := get("/metrics"); !strings.Contains(body, "megate_exporter_test_total 9") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	var samples []Sample
	if err := json.Unmarshal([]byte(get("/metrics.json")), &samples); err != nil {
		t.Fatalf("metrics.json does not parse: %v", err)
	}
	if len(samples) != 2 {
		t.Fatalf("json snapshot has %d samples, want 2: %+v", len(samples), samples)
	}
	hist, ctr := samples[0], samples[1]
	if ctr.Name != "megate_exporter_test_total" || ctr.Value != 9 {
		t.Errorf("counter sample = %+v", ctr)
	}
	if hist.Name != "megate_exporter_test_seconds" || hist.Count != 1 {
		t.Errorf("histogram sample = %+v", hist)
	}
	// The overflow bucket must round-trip through JSON as +Inf.
	if last := hist.Bucket[len(hist.Bucket)-1]; !math.IsInf(last.Upper, 1) || last.Count != 1 {
		t.Errorf("overflow bucket did not round-trip: %+v", last)
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Error("pprof index not served")
	}
}
