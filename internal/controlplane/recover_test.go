package controlplane

import (
	"net"
	"testing"
	"time"

	"megate/internal/core"
	"megate/internal/kvstore"
	"megate/internal/topology"
	"megate/internal/traffic"
)

// TestRecoverUnchangedWritesZero covers the acceptance criterion's base
// case: a restarted controller that recovers its delta state and re-solves
// the identical matrix writes zero records — no full-fleet rewrite.
func TestRecoverUnchangedWritesZero(t *testing.T) {
	topo := topology.BuildB4()
	topology.AttachEndpointsExact(topo, 3)
	m := traffic.Generate(topo, traffic.GenOptions{Seed: 1, MeanDemandMbps: 20})
	store := kvstore.NewStore(2)

	ctrl := NewController(core.NewSolver(topo, core.Options{Incremental: true}), StoreAdapter{Store: store})
	_, n1, err := ctrl.RunInterval(m)
	if err != nil {
		t.Fatal(err)
	}
	if n1 == 0 {
		t.Fatal("first interval wrote no configs")
	}

	// "Restart": a brand-new controller over the same database.
	ctrl2 := NewController(core.NewSolver(topo, core.Options{Incremental: true}), StoreAdapter{Store: store})
	restored, err := ctrl2.Recover(StoreAdapter{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if restored != n1 {
		t.Errorf("restored %d records, want %d", restored, n1)
	}
	if ctrl2.Version() != 1 {
		t.Errorf("recovered version = %d, want 1", ctrl2.Version())
	}

	_, n2, err := ctrl2.RunInterval(m)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != 0 {
		t.Errorf("recovered controller rewrote %d records on an unchanged matrix, want 0", n2)
	}
	if st := ctrl2.LastStats(); st.Unchanged != n1 || st.Deleted != 0 {
		t.Errorf("stats = %+v, want %d unchanged, 0 deleted", st, n1)
	}
	// Publication stayed monotone: 1 (before restart) -> 2.
	if store.Version() != 2 {
		t.Errorf("published version = %d, want 2", store.Version())
	}
}

// TestRecoverChurnedWritesOnlyDelta is the acceptance criterion proper: the
// interval after a recovered restart writes exactly the records a
// never-restarted controller would have written for the same churn — the
// restart is invisible in the database write stream.
func TestRecoverChurnedWritesOnlyDelta(t *testing.T) {
	topo := topology.BuildB4()
	topology.AttachEndpointsExact(topo, 3)
	m1 := traffic.Generate(topo, traffic.GenOptions{Seed: 1, MeanDemandMbps: 20})
	m2 := traffic.Generate(topo, traffic.GenOptions{Seed: 3, MeanDemandMbps: 20})

	// Control arm: one controller lives through both intervals.
	storeA := kvstore.NewStore(2)
	ctrlA := NewController(core.NewSolver(topo, core.Options{Incremental: true}), StoreAdapter{Store: storeA})
	if _, _, err := ctrlA.RunInterval(m1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ctrlA.RunInterval(m2); err != nil {
		t.Fatal(err)
	}
	want := ctrlA.LastStats()
	if want.Written == 0 || want.Unchanged == 0 {
		t.Fatalf("control stats %+v give no churn signal; pick different matrices", want)
	}

	// Restart arm: interval one, controller dies, replacement recovers.
	storeB := kvstore.NewStore(2)
	ctrlB := NewController(core.NewSolver(topo, core.Options{Incremental: true}), StoreAdapter{Store: storeB})
	if _, _, err := ctrlB.RunInterval(m1); err != nil {
		t.Fatal(err)
	}
	ctrlB2 := NewController(core.NewSolver(topo, core.Options{Incremental: true}), StoreAdapter{Store: storeB})
	if _, err := ctrlB2.Recover(StoreAdapter{Store: storeB}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ctrlB2.RunInterval(m2); err != nil {
		t.Fatal(err)
	}
	got := ctrlB2.LastStats()
	if got != want {
		t.Errorf("recovered-controller interval stats = %+v, control = %+v; restart changed the write stream", got, want)
	}

	// The databases are byte-identical afterwards.
	keysA, keysB := storeA.Keys(configPrefix), storeB.Keys(configPrefix)
	if len(keysA) != len(keysB) {
		t.Fatalf("store divergence: %d vs %d records", len(keysA), len(keysB))
	}
	for i, k := range keysA {
		if keysB[i] != k {
			t.Fatalf("key divergence at %d: %q vs %q", i, k, keysB[i])
		}
		va, _ := storeA.Get(k)
		vb, _ := storeB.Get(k)
		if string(va) != string(vb) {
			t.Errorf("record %s diverged after restart", k)
		}
	}
	if storeA.Version() != storeB.Version() {
		t.Errorf("version divergence: %d vs %d", storeA.Version(), storeB.Version())
	}
}

// TestRecoverVersionMonotone: without version recovery, a fresh controller
// would publish 1 over a fleet at 3 and Store.Publish would silently drop
// it; agents would never see another update.
func TestRecoverVersionMonotone(t *testing.T) {
	topo := topology.BuildB4()
	topology.AttachEndpointsExact(topo, 3)
	m := traffic.Generate(topo, traffic.GenOptions{Seed: 1, MeanDemandMbps: 20})
	store := kvstore.NewStore(2)

	ctrl := NewController(core.NewSolver(topo, core.Options{Incremental: true}), StoreAdapter{Store: store})
	for i := 0; i < 3; i++ {
		if _, _, err := ctrl.RunInterval(m); err != nil {
			t.Fatal(err)
		}
	}

	ctrl2 := NewController(core.NewSolver(topo, core.Options{Incremental: true}), StoreAdapter{Store: store})
	if _, err := ctrl2.Recover(StoreAdapter{Store: store}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ctrl2.RunInterval(m); err != nil {
		t.Fatal(err)
	}
	if store.Version() != 4 {
		t.Errorf("published version = %d, want 4 (monotone across restart)", store.Version())
	}
	agent := &Agent{Instance: topo.Endpoints[0].Instance, Reader: StoreAdapter{Store: store}}
	if _, err := agent.Poll(); err != nil {
		t.Fatal(err)
	}
	if agent.LastVersion() != 4 {
		t.Errorf("agent converged to %d, want 4", agent.LastVersion())
	}
}

// TestRecoverSkipsCorruptRecords: a record that fails to parse is left out
// of lastHash, so the next interval rewrites (repairs) exactly it.
func TestRecoverSkipsCorruptRecords(t *testing.T) {
	topo := topology.BuildB4()
	topology.AttachEndpointsExact(topo, 3)
	m := traffic.Generate(topo, traffic.GenOptions{Seed: 1, MeanDemandMbps: 20})
	store := kvstore.NewStore(2)

	ctrl := NewController(core.NewSolver(topo, core.Options{Incremental: true}), StoreAdapter{Store: store})
	_, n1, err := ctrl.RunInterval(m)
	if err != nil {
		t.Fatal(err)
	}
	keys := store.Keys(configPrefix)
	if len(keys) != n1 {
		t.Fatalf("stored %d records, written %d", len(keys), n1)
	}
	victim := keys[0]
	store.Put(victim, []byte("{torn"))

	ctrl2 := NewController(core.NewSolver(topo, core.Options{Incremental: true}), StoreAdapter{Store: store})
	restored, err := ctrl2.Recover(StoreAdapter{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if restored != n1-1 {
		t.Errorf("restored %d records, want %d (corrupt one skipped)", restored, n1-1)
	}
	if _, n2, err := ctrl2.RunInterval(m); err != nil {
		t.Fatal(err)
	} else if n2 != 1 {
		t.Errorf("repair interval wrote %d records, want exactly the corrupt one", n2)
	}
	data, ok := store.Get(victim)
	if !ok || len(data) == 0 || data[0] != '{' || data[len(data)-1] != '}' {
		t.Errorf("victim record not repaired: %q", data)
	}
}

// TestRecoverOverReplicas exercises the whole wire path: controller writes
// through a ReplicaAdapter to two TCP servers, dies, and its replacement
// recovers through the same replicas.
func TestRecoverOverReplicas(t *testing.T) {
	topo := topology.BuildB4()
	topology.AttachEndpointsExact(topo, 3)
	m := traffic.Generate(topo, traffic.GenOptions{Seed: 1, MeanDemandMbps: 20})

	var addrs []string
	for i := 0; i < 2; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := kvstore.Serve(l, kvstore.NewStore(2))
		t.Cleanup(srv.Close)
		addrs = append(addrs, srv.Addr())
	}
	rc := kvstore.NewReplicaClient(addrs, func(rc *kvstore.ReplicaClient) { rc.Timeout = 2 * time.Second })
	defer rc.Close()
	db := ReplicaAdapter{Client: rc}

	ctrl := NewController(core.NewSolver(topo, core.Options{Incremental: true}), db)
	_, n1, err := ctrl.RunInterval(m)
	if err != nil {
		t.Fatal(err)
	}

	ctrl2 := NewController(core.NewSolver(topo, core.Options{Incremental: true}), db)
	restored, err := ctrl2.Recover(db)
	if err != nil {
		t.Fatal(err)
	}
	if restored != n1 {
		t.Errorf("restored %d, want %d", restored, n1)
	}
	if _, n2, err := ctrl2.RunInterval(m); err != nil {
		t.Fatal(err)
	} else if n2 != 0 {
		t.Errorf("recovered controller wrote %d over the wire, want 0", n2)
	}
	if v, err := rc.Version(); err != nil || v != 2 {
		t.Errorf("replica version = %d err=%v, want 2", v, err)
	}
}
