package controlplane

import (
	"megate/internal/telemetry"
)

// Metric names exported by the control plane. Agent counters are fleet-level
// aggregates (every agent sharing a registry folds into one series — the
// per-agent view stays on the Agent accessors); controller metrics time the
// solve stages of §4 and count the delta publisher's work.
const (
	MetricAgentPolls      = "megate_agent_polls_total"
	MetricAgentUpdates    = "megate_agent_updates_total"
	MetricAgentEmptyAcks  = "megate_agent_empty_acks_total"
	MetricAgentErrors     = "megate_agent_errors_total"
	MetricAgentFallbacks  = "megate_agent_fallbacks_total"
	MetricAgentRecoveries = "megate_agent_recoveries_total"
	MetricAgentDegraded   = "megate_agent_degraded"
	// Snapshot+delta sync counters: full-state snapshots (cold boot, TTL
	// recovery, or a delta-log gap), incremental delta polls, and how many of
	// the snapshots were forced by a GAP answer specifically.
	MetricAgentSnapshots  = "megate_agent_snapshots_total"
	MetricAgentDeltaPolls = "megate_agent_delta_polls_total"
	MetricAgentDeltaGaps  = "megate_agent_delta_gaps_total"
	// MetricAgentBusy counts polls shed by database admission control —
	// back-pressure the agent absorbed without advancing its staleness TTL.
	MetricAgentBusy = "megate_agent_busy_total"

	MetricSolveStageSeconds    = "megate_controller_solve_stage_seconds"
	MetricIntervalSeconds      = "megate_controller_interval_seconds"
	MetricIntervals            = "megate_controller_intervals_total"
	MetricConfigsWritten       = "megate_controller_configs_written_total"
	MetricConfigsDeleted       = "megate_controller_configs_deleted_total"
	MetricConfigsSkipped       = "megate_controller_configs_skipped_total"
	MetricConfigWriteErrors    = "megate_controller_config_write_errors_total"
	MetricControllerSolveFails = "megate_controller_solve_failures_total"

	// Fast-path routing metrics (core.Options.FastPath): per-class stage-1
	// solves served by the certificate-gated fast path vs fallbacks to the
	// exact simplex, and the certified relative optimality gap of each
	// interval's published allocation.
	MetricFastPathHits      = "megate_controller_fastpath_hits_total"
	MetricFastPathFallbacks = "megate_controller_fastpath_fallbacks_total"
	MetricOptimalityGap     = "megate_controller_optimality_gap"

	// Streaming-pipeline metrics (RunIntervalStreaming): the depth of the
	// solver→publisher chunk queue, the per-stage cost of the streaming
	// publisher, and the fraction of record writes that overlapped the solve
	// instead of trailing it.
	MetricStreamDepth        = "megate_controller_stream_depth"
	MetricStreamStageSeconds = "megate_controller_stream_stage_seconds"
	MetricPublishOverlapFrac = "megate_controller_publish_overlap_fraction"
)

// SolveStages are the label values of MetricSolveStageSeconds, matching the
// pipeline of §4: cross-site aggregation (SiteMerge), the site-level LP
// (MaxSiteFlow), per-flow path assignment (FastSSP), and the kvstore
// publication pass.
var SolveStages = []string{"sitemerge", "maxsiteflow", "fastssp", "publish"}

// StreamStages are the label values of MetricStreamStageSeconds: config
// encoding (JSON + hashing), batched shard flushes, and the post-solve sweep
// that reconciles streamed state with the final assignment.
var StreamStages = []string{"encode", "flush", "sweep"}

// RegisterMetrics pre-registers the control-plane metric inventory in r so
// scrapes see the full name set before the first interval or poll.
func RegisterMetrics(r *telemetry.Registry) {
	newAgentMetrics(r)
	newControllerMetrics(r)
}

type agentMetrics struct {
	polls      *telemetry.Counter
	updates    *telemetry.Counter
	emptyAcks  *telemetry.Counter
	errs       *telemetry.Counter
	fallbacks  *telemetry.Counter
	recoveries *telemetry.Counter
	degraded   *telemetry.Gauge
	snapshots  *telemetry.Counter
	deltaPolls *telemetry.Counter
	deltaGaps  *telemetry.Counter
	busy       *telemetry.Counter
}

func newAgentMetrics(r *telemetry.Registry) *agentMetrics {
	return &agentMetrics{
		polls:      r.Counter(MetricAgentPolls),
		updates:    r.Counter(MetricAgentUpdates),
		emptyAcks:  r.Counter(MetricAgentEmptyAcks),
		errs:       r.Counter(MetricAgentErrors),
		fallbacks:  r.Counter(MetricAgentFallbacks),
		recoveries: r.Counter(MetricAgentRecoveries),
		degraded:   r.Gauge(MetricAgentDegraded),
		snapshots:  r.Counter(MetricAgentSnapshots),
		deltaPolls: r.Counter(MetricAgentDeltaPolls),
		deltaGaps:  r.Counter(MetricAgentDeltaGaps),
		busy:       r.Counter(MetricAgentBusy),
	}
}

type controllerMetrics struct {
	stage       map[string]*telemetry.Histogram
	interval    *telemetry.Histogram
	intervals   *telemetry.Counter
	written     *telemetry.Counter
	deleted     *telemetry.Counter
	skipped     *telemetry.Counter
	writeErrs   *telemetry.Counter
	solveFails  *telemetry.Counter
	streamDepth *telemetry.Gauge
	streamStage map[string]*telemetry.Histogram
	overlapFrac *telemetry.Gauge

	fastHits      *telemetry.Counter
	fastFallbacks *telemetry.Counter
	optimalityGap *telemetry.Histogram
}

// GapBuckets are the MetricOptimalityGap bounds: certified relative gaps
// from "numerically optimal" through the 1% fast-path default up to the
// loose bounds an approximate fallback can report.
var GapBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 0.003, 0.01, 0.03, 0.1}

func newControllerMetrics(r *telemetry.Registry) *controllerMetrics {
	m := &controllerMetrics{
		stage:       make(map[string]*telemetry.Histogram, len(SolveStages)),
		interval:    r.Histogram(MetricIntervalSeconds, telemetry.TimeBuckets),
		intervals:   r.Counter(MetricIntervals),
		written:     r.Counter(MetricConfigsWritten),
		deleted:     r.Counter(MetricConfigsDeleted),
		skipped:     r.Counter(MetricConfigsSkipped),
		writeErrs:   r.Counter(MetricConfigWriteErrors),
		solveFails:  r.Counter(MetricControllerSolveFails),
		streamDepth: r.Gauge(MetricStreamDepth),
		streamStage: make(map[string]*telemetry.Histogram, len(StreamStages)),
		overlapFrac: r.Gauge(MetricPublishOverlapFrac),

		fastHits:      r.Counter(MetricFastPathHits),
		fastFallbacks: r.Counter(MetricFastPathFallbacks),
		optimalityGap: r.Histogram(MetricOptimalityGap, GapBuckets),
	}
	for _, s := range SolveStages {
		m.stage[s] = r.Histogram(MetricSolveStageSeconds, telemetry.TimeBuckets, "stage", s)
	}
	for _, s := range StreamStages {
		m.streamStage[s] = r.Histogram(MetricStreamStageSeconds, telemetry.TimeBuckets, "stage", s)
	}
	return m
}
