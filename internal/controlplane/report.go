package controlplane

import (
	"encoding/json"
	"fmt"
	"sort"

	"megate/internal/hoststack"
	"megate/internal/kvstore"
)

// Flow statistics travel the same path as configurations, in the opposite
// direction (§5.1: the endpoint agent reads instance-level flow data and
// "stores them into the backend server"): each host's agent PUTs its
// collected records under a per-host key, and the controller scans the
// prefix before solving the next interval.

// ReportKeyPrefix namespaces per-host flow reports in the TE database.
const ReportKeyPrefix = "te/stats/"

// ReportKey returns the database key for a host's flow report.
func ReportKey(hostID string) string { return ReportKeyPrefix + hostID }

// FlowReport is one host's collected statistics for a TE interval.
type FlowReport struct {
	Host    string                 `json:"host"`
	Records []hoststack.FlowRecord `json:"records"`
}

// StatsStore is the write/scan interface flow reports need; both
// *kvstore.Store and *kvstore.Client satisfy it via the adapters below.
type StatsStore interface {
	PutReport(hostID string, data []byte) error
	ScanReports() (map[string][]byte, error)
}

// PutReport implements StatsStore for StoreAdapter.
func (a StoreAdapter) PutReport(hostID string, data []byte) error {
	a.Store.Put(ReportKey(hostID), data)
	return nil
}

// ScanReports implements StatsStore for StoreAdapter.
func (a StoreAdapter) ScanReports() (map[string][]byte, error) {
	out := make(map[string][]byte)
	for _, k := range a.Store.Keys(ReportKeyPrefix) {
		if v, ok := a.Store.Get(k); ok {
			out[k] = v
		}
	}
	return out, nil
}

// PutReport implements StatsStore for ClientAdapter.
func (a ClientAdapter) PutReport(hostID string, data []byte) error {
	return a.Client.Put(ReportKey(hostID), data)
}

// ScanReports implements StatsStore for ClientAdapter.
func (a ClientAdapter) ScanReports() (map[string][]byte, error) {
	keys, err := a.Client.Keys(ReportKeyPrefix)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]byte, len(keys))
	for _, k := range keys {
		v, ok, err := a.Client.Get(k)
		if err != nil {
			return nil, err
		}
		if ok {
			out[k] = v
		}
	}
	return out, nil
}

// ReportFlows uploads one host's collected records, overwriting its
// previous report (the statistics of the current TE interval supersede the
// last one's).
func ReportFlows(store StatsStore, hostID string, records []hoststack.FlowRecord) error {
	data, err := json.Marshal(FlowReport{Host: hostID, Records: records})
	if err != nil {
		return fmt.Errorf("controlplane: marshal report for %s: %w", hostID, err)
	}
	return store.PutReport(hostID, data)
}

// CollectReports gathers every host's latest report from the database —
// the controller's input to demand estimation for the next interval.
func CollectReports(store StatsStore) ([]FlowReport, error) {
	raw, err := store.ScanReports()
	if err != nil {
		return nil, err
	}
	// Decode in sorted key order so demand estimation sees the same record
	// order every interval regardless of map iteration.
	keys := make([]string, 0, len(raw))
	for key := range raw {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	reports := make([]FlowReport, 0, len(keys))
	for _, key := range keys {
		var rep FlowReport
		if err := json.Unmarshal(raw[key], &rep); err != nil {
			return nil, fmt.Errorf("controlplane: bad report at %s: %w", key, err)
		}
		reports = append(reports, rep)
	}
	return reports, nil
}

// AllRecords flattens reports into one record list for the
// DemandEstimator.
func AllRecords(reports []FlowReport) []hoststack.FlowRecord {
	var out []hoststack.FlowRecord
	for _, rep := range reports {
		out = append(out, rep.Records...)
	}
	return out
}

// ensure kvstore types stay assignable to the adapters (compile-time).
var (
	_ StatsStore = StoreAdapter{Store: (*kvstore.Store)(nil)}
	_ StatsStore = ClientAdapter{Client: (*kvstore.Client)(nil)}
)
