package controlplane

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"megate/internal/kvstore"
	"megate/internal/telemetry"
)

// TestAgentStatsUnderRun is the regression test for the agent counter data
// race: Run's goroutine mutates the counters while the main goroutine reads
// every accessor. Before the counters moved onto telemetry atomics this was
// a -race failure; now the test asserts the readers observe sane values
// while writes are in flight.
func TestAgentStatsUnderRun(t *testing.T) {
	store := kvstore.NewStore(1)
	putConfig(t, store, "ins-x", 1, []PathEntry{{DstSite: 3, Hops: []uint32{0, 3}}})
	agent := &Agent{
		Instance: "ins-x",
		Reader:   StoreAdapter{Store: store},
		Metrics:  telemetry.NewRegistry(),
	}

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = agent.Run(ctx, time.Millisecond)
	}()

	// Publish a stream of new versions while hammering every accessor from
	// this goroutine; -race flags any unsynchronized counter.
	deadline := time.Now().Add(200 * time.Millisecond)
	version := uint64(1)
	for time.Now().Before(deadline) {
		version++
		putConfig(t, store, "ins-x", version, []PathEntry{{DstSite: 3, Hops: []uint32{0, 3}}})
		for i := 0; i < 100; i++ {
			// Stats reads two atomics non-atomically, so no cross-counter
			// invariant holds mid-flight; -race is the real assertion here.
			_, _ = agent.Stats()
			_ = agent.Errors()
			_ = agent.EmptyAcks()
			_ = agent.Degraded()
			_, _ = agent.FallbackStats()
			if lv := agent.LastVersion(); lv > version {
				t.Fatalf("LastVersion %d beyond published %d", lv, version)
			}
		}
	}
	cancel()
	wg.Wait()

	polls, updates := agent.Stats()
	if polls == 0 || updates == 0 {
		t.Errorf("agent made no progress under concurrent reads: polls=%d updates=%d", polls, updates)
	}
	if agent.LastVersion() == 0 {
		t.Error("agent never applied a version")
	}
	// The fleet registry mirrors the per-agent counters.
	if got := agent.Metrics.Counter(MetricAgentPolls).Value(); got != polls {
		t.Errorf("fleet polls counter = %d, want %d", got, polls)
	}
	if got := agent.Metrics.Counter(MetricAgentUpdates).Value(); got != updates {
		t.Errorf("fleet updates counter = %d, want %d", got, updates)
	}
}

// TestNextWaitBackoffSchedule pins Run's backoff policy: transport failures
// double the wait up to the cap, while a nil error or a bad-record
// application error snaps back to the base interval.
func TestNextWaitBackoffSchedule(t *testing.T) {
	base := 10 * time.Millisecond
	max := 80 * time.Millisecond
	transport := errors.New("dial refused")

	wait := base
	want := []time.Duration{20, 40, 80, 80}
	for i, w := range want {
		wait = nextWait(wait, base, max, transport)
		if wait != w*time.Millisecond {
			t.Fatalf("transport failure %d: wait = %v, want %v", i+1, wait, w*time.Millisecond)
		}
	}
	if got := nextWait(wait, base, max, nil); got != base {
		t.Errorf("success after backoff: wait = %v, want base %v", got, base)
	}
	// The fixed bug: a reachable database serving one corrupt record must
	// not push the agent into backoff — the next interval may repair it.
	if got := nextWait(max, base, max, ErrBadRecord); got != base {
		t.Errorf("bad record: wait = %v, want base %v", got, base)
	}
	if got := nextWait(max, base, max, errors.Join(ErrBadRecord)); got != base {
		t.Errorf("wrapped bad record: wait = %v, want base %v", got, base)
	}
}

// TestAgentBadRecordIsApplicationError checks Poll classifies a corrupt
// record as ErrBadRecord (no backoff, no staleness-TTL advance) while a
// transport failure stays a plain error.
func TestAgentBadRecordIsApplicationError(t *testing.T) {
	store := kvstore.NewStore(1)
	sr := &scriptReader{store: store, badJSON: []byte("{corrupt")}
	store.Publish(1)
	agent := &Agent{Instance: "ins-x", Reader: sr, Metrics: telemetry.NewRegistry()}

	_, err := agent.Poll()
	if !errors.Is(err, ErrBadRecord) {
		t.Fatalf("corrupt record err = %v, want errors.Is ErrBadRecord", err)
	}

	sr.failing = true
	_, err = agent.Poll()
	if err == nil || errors.Is(err, ErrBadRecord) {
		t.Fatalf("transport err = %v, must not match ErrBadRecord", err)
	}
}

// TestAgentEmptyAckSplit pins the counter split: a version advance with no
// record for the instance is an empty ack, not an update.
func TestAgentEmptyAckSplit(t *testing.T) {
	store := kvstore.NewStore(1)
	agent := &Agent{
		Instance: "ins-x",
		Reader:   StoreAdapter{Store: store},
		Metrics:  telemetry.NewRegistry(),
	}

	// Version advances but no record exists: consumed, counted as empty ack.
	store.Publish(1)
	applied, err := agent.Poll()
	if err != nil || !applied {
		t.Fatalf("empty-version poll: applied=%v err=%v", applied, err)
	}
	if _, updates := agent.Stats(); updates != 0 {
		t.Errorf("updates = %d after recordless version, want 0", updates)
	}
	if got := agent.EmptyAcks(); got != 1 {
		t.Errorf("emptyAcks = %d, want 1", got)
	}
	if agent.LastVersion() != 1 {
		t.Errorf("lastVersion = %d, want 1 (version still consumed)", agent.LastVersion())
	}

	// A real record counts as an update.
	putConfig(t, store, "ins-x", 2, []PathEntry{{DstSite: 3, Hops: []uint32{0, 3}}})
	if applied, err := agent.Poll(); err != nil || !applied {
		t.Fatalf("record poll: applied=%v err=%v", applied, err)
	}
	if _, updates := agent.Stats(); updates != 1 {
		t.Errorf("updates = %d after real record, want 1", updates)
	}
	if got := agent.EmptyAcks(); got != 1 {
		t.Errorf("emptyAcks = %d after real record, want still 1", got)
	}
	if got := agent.Metrics.Counter(MetricAgentEmptyAcks).Value(); got != 1 {
		t.Errorf("fleet emptyAcks counter = %d, want 1", got)
	}
}

// TestControllerStageMetrics checks RunInterval lands timings in every solve
// stage histogram and books the delta-publication counters.
func TestControllerStageMetrics(t *testing.T) {
	_, m, solver := testSetup(t)
	reg := telemetry.NewRegistry()
	store := kvstore.NewStore(1)
	ctrl := NewController(solver, StoreAdapter{Store: store})
	ctrl.Metrics = reg
	if _, _, err := ctrl.RunInterval(m); err != nil {
		t.Fatal(err)
	}
	for _, stage := range SolveStages {
		h := reg.Histogram(MetricSolveStageSeconds, telemetry.TimeBuckets, "stage", stage)
		if h.Count() != 1 {
			t.Errorf("stage %q histogram count = %d, want 1", stage, h.Count())
		}
	}
	if got := reg.Counter(MetricIntervals).Value(); got != 1 {
		t.Errorf("intervals = %d, want 1", got)
	}
	written := reg.Counter(MetricConfigsWritten).Value()
	if written == 0 {
		t.Error("no configs written booked")
	}
	// A second identical interval: everything is skipped by the delta cache.
	if _, _, err := ctrl.RunInterval(m); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(MetricConfigsWritten).Value(); got != written {
		t.Errorf("written moved %d -> %d on identical interval", written, got)
	}
	if got := reg.Counter(MetricConfigsSkipped).Value(); got != written {
		t.Errorf("skipped = %d on identical interval, want %d", got, written)
	}
}
