package controlplane

import (
	"encoding/json"
	"fmt"
	"strings"

	"megate/internal/kvstore"
)

// ConfigSource is what Controller.Recover needs from the TE database: the
// agent-side read interface plus key enumeration. All three adapters
// (in-process store, single client, replica client) satisfy it.
type ConfigSource interface {
	ConfigReader
	ListConfigKeys(prefix string) ([]string, error)
}

// ListConfigKeys implements ConfigSource for StoreAdapter.
func (a StoreAdapter) ListConfigKeys(prefix string) ([]string, error) {
	return a.Store.Keys(prefix), nil
}

// ListConfigKeys implements ConfigSource for ClientAdapter.
func (a ClientAdapter) ListConfigKeys(prefix string) ([]string, error) {
	return a.Client.Keys(prefix)
}

// ReplicaAdapter adapts a *kvstore.ReplicaClient to every control-plane
// interface: ConfigStore for the controller's fan-out writes, ConfigReader
// for agents that fail over across replicas, and ConfigSource for recovery.
type ReplicaAdapter struct{ Client *kvstore.ReplicaClient }

// PutConfig implements ConfigStore.
func (a ReplicaAdapter) PutConfig(key string, value []byte) error {
	return a.Client.Put(key, value)
}

// DeleteConfig implements ConfigStore.
func (a ReplicaAdapter) DeleteConfig(key string) error {
	return a.Client.Delete(key)
}

// PublishVersion implements ConfigStore.
func (a ReplicaAdapter) PublishVersion(v uint64) error {
	return a.Client.Publish(v)
}

// ReadVersion implements ConfigReader.
func (a ReplicaAdapter) ReadVersion() (uint64, error) { return a.Client.Version() }

// ReadConfig implements ConfigReader.
func (a ReplicaAdapter) ReadConfig(key string) ([]byte, bool, error) {
	return a.Client.Get(key)
}

// ListConfigKeys implements ConfigSource.
func (a ReplicaAdapter) ListConfigKeys(prefix string) ([]string, error) {
	return a.Client.Keys(prefix)
}

// ReadSnapshot implements DeltaSource with replica failover.
func (a ReplicaAdapter) ReadSnapshot(prefix string) (uint64, map[string][]byte, error) {
	return a.Client.Snapshot(prefix)
}

// ReadDelta implements DeltaSource with replica failover; kvstore.ErrDeltaGap
// from the answering replica propagates so the agent resyncs via snapshot.
func (a ReplicaAdapter) ReadDelta(since uint64, prefix string) (uint64, []kvstore.DeltaEntry, error) {
	return a.Client.Delta(since, prefix)
}

// Recover rebuilds the controller's delta-publication state from the
// database after a restart: it reads the published version (so the next
// publish stays monotone — Store.Publish ignores regressions, so a fresh
// controller publishing version 1 over a fleet at version 40 would be
// silently dropped and the agents would never converge) and re-derives
// lastHash from every stored configuration record. The next RunInterval
// then writes only the records that actually changed instead of rewriting
// the entire fleet — a controller restart costs the database nothing
// beyond the enumeration.
//
// Records that fail to parse are skipped (left out of lastHash), which
// makes the next interval rewrite them: self-repair for corrupt records.
// Recover reports how many records were restored.
func (c *Controller) Recover(src ConfigSource) (int, error) {
	v, err := src.ReadVersion()
	if err != nil {
		return 0, fmt.Errorf("controlplane: recover version: %w", err)
	}
	keys, err := src.ListConfigKeys(configPrefix)
	if err != nil {
		return 0, fmt.Errorf("controlplane: recover keys: %w", err)
	}
	if c.lastHash == nil {
		c.lastHash = make(map[string]uint64)
	}
	restored := 0
	for _, key := range keys {
		ins := strings.TrimPrefix(key, configPrefix)
		data, ok, err := src.ReadConfig(key)
		if err != nil {
			return restored, fmt.Errorf("controlplane: recover %s: %w", key, err)
		}
		if !ok {
			continue // deleted between KEYS and GET; nothing to restore
		}
		var cfg InstanceConfig
		if err := json.Unmarshal(data, &cfg); err != nil {
			continue // corrupt record: leave unhashed so the next interval rewrites it
		}
		c.lastHash[ins] = configHash(&cfg)
		restored++
	}
	c.version.Store(v)
	return restored, nil
}
