package controlplane

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// TopDownServer is the conventional control loop's endpoint-facing side
// (Figure 4a): every endpoint keeps a persistent connection alive with
// heartbeats so the controller can push TE configurations at any moment.
// Holding millions of such connections is what Figures 13–14 show to be
// untenable; this implementation exists to measure exactly that.
type TopDownServer struct {
	l net.Listener

	mu        sync.Mutex
	conns     map[net.Conn]*bufio.Writer
	done      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once

	// pushMu serializes Push calls so per-connection writers are never
	// written concurrently; conn writes happen under it, NOT under mu, so a
	// blocked endpoint cannot stall connection adds/removes.
	pushMu sync.Mutex

	heartbeats atomic.Uint64
}

// ServeTopDown starts the server on l.
func ServeTopDown(l net.Listener) *TopDownServer {
	s := &TopDownServer{l: l, conns: make(map[net.Conn]*bufio.Writer), done: make(chan struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listen address.
func (s *TopDownServer) Addr() string { return s.l.Addr().String() }

// Connections returns the number of live endpoint connections.
func (s *TopDownServer) Connections() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// Heartbeats returns the cumulative heartbeat count.
func (s *TopDownServer) Heartbeats() uint64 { return s.heartbeats.Load() }

// Push sends a configuration blob to every connected endpoint and returns
// how many received it. The connection table is snapshotted under mu; the
// writes themselves happen under pushMu only, so a slow or blocked endpoint
// never stalls accept/teardown.
func (s *TopDownServer) Push(config []byte) int {
	s.pushMu.Lock()
	defer s.pushMu.Unlock()
	type target struct {
		conn net.Conn
		w    *bufio.Writer
	}
	s.mu.Lock()
	targets := make([]target, 0, len(s.conns))
	for conn, w := range s.conns {
		targets = append(targets, target{conn, w})
	}
	s.mu.Unlock()
	sent := 0
	//lint:ignore lockcheck the top-down baseline serializes pushes by design: pushMu must be held across the writes or concurrent Pushes interleave frames on a connection — this head-of-line blocking is the defect Figures 13-14 measure
	for _, t := range targets {
		if _, err := fmt.Fprintf(t.w, "CONFIG %d\n", len(config)); err != nil {
			_ = t.conn.Close()
			continue
		}
		_, _ = t.w.Write(config)
		_ = t.w.WriteByte('\n')
		if err := t.w.Flush(); err != nil {
			_ = t.conn.Close()
			continue
		}
		sent++
	}
	return sent
}

// Close shuts the server down. Closing twice is safe.
func (s *TopDownServer) Close() {
	s.closeOnce.Do(func() {
		close(s.done)
		_ = s.l.Close()
		// Snapshot under the lock, close outside it (see Push).
		s.mu.Lock()
		conns := make([]net.Conn, 0, len(s.conns))
		for c := range s.conns {
			conns = append(conns, c)
		}
		s.mu.Unlock()
		for _, c := range conns {
			_ = c.Close()
		}
		s.wg.Wait()
	})
}

func (s *TopDownServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.l.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				continue
			}
		}
		s.mu.Lock()
		s.conns[conn] = bufio.NewWriter(conn)
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

func (s *TopDownServer) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	r := bufio.NewReader(conn)
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		switch strings.TrimSpace(line) {
		case "HB":
			s.heartbeats.Add(1)
		default:
			// HELLO <id> and anything else: ignore, the connection itself
			// is the state.
		}
	}
}

// TopDownEndpoint is the endpoint side of the persistent control channel.
type TopDownEndpoint struct {
	ID string

	received atomic.Uint64
}

// ConfigsReceived returns how many pushed configurations arrived.
func (e *TopDownEndpoint) ConfigsReceived() uint64 { return e.received.Load() }

// Run connects to the controller, heartbeats on the interval, and consumes
// pushed configurations until the context ends.
func (e *TopDownEndpoint) Run(ctx context.Context, addr string, heartbeat time.Duration) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	// Join order matters: the defers run LIFO, so on return Run first
	// signals done and closes the connection — unblocking both helper
	// goroutines — and only then waits for them. Run never leaks its
	// goroutines.
	var wg sync.WaitGroup
	done := make(chan struct{})
	defer wg.Wait()
	defer func() {
		close(done)
		_ = conn.Close()
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		select {
		case <-ctx.Done():
			_ = conn.Close()
		case <-done:
		}
	}()
	if _, err := fmt.Fprintf(conn, "HELLO %s\n", e.ID); err != nil {
		return err
	}

	// Reader: consume pushed configs until the connection closes.
	errc := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := bufio.NewReader(conn)
		for {
			line, err := r.ReadString('\n')
			if err != nil {
				errc <- err
				return
			}
			fields := strings.Fields(strings.TrimSpace(line))
			if len(fields) == 2 && fields[0] == "CONFIG" {
				n, err := strconv.Atoi(fields[1])
				if err != nil || n < 0 {
					errc <- fmt.Errorf("controlplane: bad CONFIG frame %q", line)
					return
				}
				if _, err := io.CopyN(io.Discard, r, int64(n)+1); err != nil {
					errc <- err
					return
				}
				e.received.Add(1)
			}
		}
	}()

	ticker := time.NewTicker(heartbeat)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			if _, err := fmt.Fprint(conn, "HB\n"); err != nil {
				return err
			}
		case err := <-errc:
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}
