package controlplane

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// TopDownServer is the conventional control loop's endpoint-facing side
// (Figure 4a): every endpoint keeps a persistent connection alive with
// heartbeats so the controller can push TE configurations at any moment.
// Holding millions of such connections is what Figures 13–14 show to be
// untenable; this implementation exists to measure exactly that.
type TopDownServer struct {
	l net.Listener

	mu        sync.Mutex
	conns     map[net.Conn]*bufio.Writer
	done      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once

	heartbeats atomic.Uint64
}

// ServeTopDown starts the server on l.
func ServeTopDown(l net.Listener) *TopDownServer {
	s := &TopDownServer{l: l, conns: make(map[net.Conn]*bufio.Writer), done: make(chan struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listen address.
func (s *TopDownServer) Addr() string { return s.l.Addr().String() }

// Connections returns the number of live endpoint connections.
func (s *TopDownServer) Connections() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// Heartbeats returns the cumulative heartbeat count.
func (s *TopDownServer) Heartbeats() uint64 { return s.heartbeats.Load() }

// Push sends a configuration blob to every connected endpoint and returns
// how many received it.
func (s *TopDownServer) Push(config []byte) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	sent := 0
	for conn, w := range s.conns {
		if _, err := fmt.Fprintf(w, "CONFIG %d\n", len(config)); err != nil {
			conn.Close()
			continue
		}
		w.Write(config)
		w.WriteByte('\n')
		if err := w.Flush(); err != nil {
			conn.Close()
			continue
		}
		sent++
	}
	return sent
}

// Close shuts the server down. Closing twice is safe.
func (s *TopDownServer) Close() {
	s.closeOnce.Do(func() {
		close(s.done)
		s.l.Close()
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		s.wg.Wait()
	})
}

func (s *TopDownServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.l.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				continue
			}
		}
		s.mu.Lock()
		s.conns[conn] = bufio.NewWriter(conn)
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

func (s *TopDownServer) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	r := bufio.NewReader(conn)
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		switch strings.TrimSpace(line) {
		case "HB":
			s.heartbeats.Add(1)
		default:
			// HELLO <id> and anything else: ignore, the connection itself
			// is the state.
		}
	}
}

// TopDownEndpoint is the endpoint side of the persistent control channel.
type TopDownEndpoint struct {
	ID string

	received atomic.Uint64
}

// ConfigsReceived returns how many pushed configurations arrived.
func (e *TopDownEndpoint) ConfigsReceived() uint64 { return e.received.Load() }

// Run connects to the controller, heartbeats on the interval, and consumes
// pushed configurations until the context ends.
func (e *TopDownEndpoint) Run(ctx context.Context, addr string, heartbeat time.Duration) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	go func() {
		<-ctx.Done()
		conn.Close()
	}()
	if _, err := fmt.Fprintf(conn, "HELLO %s\n", e.ID); err != nil {
		return err
	}

	// Reader: consume pushed configs.
	errc := make(chan error, 1)
	go func() {
		r := bufio.NewReader(conn)
		for {
			line, err := r.ReadString('\n')
			if err != nil {
				errc <- err
				return
			}
			fields := strings.Fields(strings.TrimSpace(line))
			if len(fields) == 2 && fields[0] == "CONFIG" {
				n, err := strconv.Atoi(fields[1])
				if err != nil || n < 0 {
					errc <- fmt.Errorf("controlplane: bad CONFIG frame %q", line)
					return
				}
				if _, err := io.CopyN(io.Discard, r, int64(n)+1); err != nil {
					errc <- err
					return
				}
				e.received.Add(1)
			}
		}
	}()

	ticker := time.NewTicker(heartbeat)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			if _, err := fmt.Fprint(conn, "HB\n"); err != nil {
				return err
			}
		case err := <-errc:
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}
