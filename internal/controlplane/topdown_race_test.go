package controlplane

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"
)

// TestTopDownCountersUnderLoadRace is the regression companion to the
// atomiccheck lint pass for the top-down baseline's counters: heartbeats is
// bumped by per-connection handler goroutines and received by each
// endpoint's consumer goroutine, while this goroutine hammers Heartbeats,
// ConfigsReceived, and Connections mid-flight and pushes configs
// concurrently. A plain (non-atomic) counter access reintroduced anywhere on
// these paths fails under -race.
func TestTopDownCountersUnderLoadRace(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeTopDown(l)
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	var eps [4]*TopDownEndpoint
	var wg sync.WaitGroup
	for i := range eps {
		eps[i] = &TopDownEndpoint{ID: string(rune('a' + i))}
		wg.Add(1)
		go func(ep *TopDownEndpoint) {
			defer wg.Done()
			_ = ep.Run(ctx, srv.Addr(), time.Millisecond)
		}(eps[i])
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Connections() < len(eps) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if srv.Connections() != len(eps) {
		t.Fatalf("connections = %d, want %d", srv.Connections(), len(eps))
	}

	// Concurrent pusher: every Push is interleaved with the endpoints'
	// heartbeat writes and this goroutine's reads below.
	pushDone := make(chan int, 1)
	go func() {
		total := 0
		for i := 0; i < 50; i++ {
			total += srv.Push([]byte(`{"v":1}`))
			time.Sleep(time.Millisecond)
		}
		pushDone <- total
	}()

	var lastHB uint64
	stop := time.Now().Add(100 * time.Millisecond)
	for time.Now().Before(stop) {
		hb := srv.Heartbeats()
		if hb < lastHB {
			t.Fatalf("heartbeat counter went backwards: %d -> %d", lastHB, hb)
		}
		lastHB = hb
		_ = srv.Connections()
		for _, ep := range eps {
			_ = ep.ConfigsReceived()
		}
	}
	sent := <-pushDone
	if sent == 0 {
		t.Error("no config ever pushed to a connected endpoint")
	}

	cancel()
	wg.Wait()
	if srv.Heartbeats() == 0 {
		t.Error("no heartbeats recorded under load")
	}
	received := uint64(0)
	for _, ep := range eps {
		received += ep.ConfigsReceived()
	}
	if received == 0 {
		t.Error("no endpoint observed a pushed config")
	}
}
