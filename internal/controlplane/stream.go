package controlplane

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"megate/internal/core"
	"megate/internal/topology"
	"megate/internal/traffic"
)

// BatchConfigStore is the optional ConfigStore extension for stores that can
// absorb a whole write batch at once — one pipelined round-trip per kvstore
// server, or one per owning shard for the cluster. The streaming publisher
// flushes through it when available and degrades to point PutConfig calls
// otherwise.
//
// failed lists the indices (into keys) of records that were not durably
// stored; it is nil exactly when err is nil.
type BatchConfigStore interface {
	PutConfigBatch(keys []string, values [][]byte) (failed []int, err error)
}

// putConfigBatch routes a batch through the store's batched path when it has
// one, falling back to sequential point writes with the same per-record
// failure reporting.
func putConfigBatch(store ConfigStore, keys []string, values [][]byte) ([]int, error) {
	if bs, ok := store.(BatchConfigStore); ok {
		return bs.PutConfigBatch(keys, values)
	}
	var failed []int
	var errs []error
	for i, k := range keys {
		if err := store.PutConfig(k, values[i]); err != nil {
			failed = append(failed, i)
			errs = append(errs, fmt.Errorf("%s: %w", k, err))
		}
	}
	if len(errs) > 0 {
		return failed, errors.Join(errs...)
	}
	return nil, nil
}

// pathSlot is one (instance, dstSite) routing decision under construction:
// the tunnel chosen for the highest matrix flow index seen so far. Keeping
// the index replicates BuildConfigs' last-flow-wins overwrite rule without
// depending on chunk arrival order.
type pathSlot struct {
	flow int32
	tn   *topology.Tunnel
}

// instEntry accumulates one instance's streamed path decisions.
type instEntry struct {
	site  topology.SiteID
	slots map[uint32]pathSlot
	// dirty marks slot changes since the last flush evaluation; eval/hash
	// memoize that evaluation so the finish sweep can skip re-encoding the
	// (vast) majority of instances that did not change after their site
	// flushed — at a million flows this is the difference between a sweep
	// that hashes a handful of residual-pass instances and one that
	// re-serializes the whole fleet.
	dirty bool
	eval  bool
	hash  uint64
}

// streamPublisher is a core.StreamSink that encodes instance configurations
// and writes them to the TE database while stage two is still solving other
// sites. Chunks flow through a buffered channel into a single consumer
// goroutine that owns all publisher state; on each SiteDone marker the
// consumer flushes that site's dirty instances as one batched store write.
// After the solve returns, finish reconciles: instances the residual pass
// (or a failed flush) left stale are rewritten, streamed records whose bytes
// already match the final assignment are accepted as-is, stale records are
// deleted, and the version is published — yielding exactly the store state
// and stats of the barriered RunInterval.
//
// Intermediate writes are invisible to agents until PublishVersion: the
// version-poll protocol is what makes overlapping publish with solve safe.
type streamPublisher struct {
	c    *Controller
	cm   *controllerMetrics
	topo *topology.Topology
	m    *traffic.Matrix
	// version is the version the interval will publish; streamed records are
	// encoded with it up front.
	version uint64

	ch       chan *core.StreamChunk
	consumer sync.WaitGroup

	// Consumer-goroutine state. c.lastHash is also touched from the consumer;
	// that is safe because the controller goroutine is blocked in SolveStream
	// for the consumer's whole lifetime and joins it before finish.
	built    map[string]*instEntry
	dirty    map[topology.SiteID]map[string]struct{}
	wrote    map[string]uint64 // instance -> hash last durably streamed
	streamed int               // records written while the solve was running
	err      error             // first fatal error (strict write or marshal)
}

func newStreamPublisher(c *Controller, cm *controllerMetrics, m *traffic.Matrix, version uint64) *streamPublisher {
	return &streamPublisher{
		c:       c,
		cm:      cm,
		topo:    c.Solver.Topology(),
		m:       m,
		version: version,
		ch:      make(chan *core.StreamChunk, 1024),
		built:   make(map[string]*instEntry),
		dirty:   make(map[topology.SiteID]map[string]struct{}),
		wrote:   make(map[string]uint64),
	}
}

// Chunk implements core.StreamSink; it is called concurrently from the
// solver's site workers and only enqueues.
func (p *streamPublisher) Chunk(ck *core.StreamChunk) {
	p.ch <- ck
	p.cm.streamDepth.Set(float64(len(p.ch)))
}

// run is the consumer goroutine: drain the stream, fold chunks into per-
// instance state, flush on site boundaries. It keeps draining after a fatal
// error so the solver never blocks on a full channel.
func (p *streamPublisher) run() {
	for ck := range p.ch {
		p.consume(ck)
		core.ReleaseChunk(ck)
	}
}

func (p *streamPublisher) consume(ck *core.StreamChunk) {
	if ck.SiteDone {
		p.flushSite(ck.Pair.Src)
		return
	}
	for i, fi := range ck.FlowIdx {
		t := ck.TunIdx[i]
		if t < 0 {
			continue
		}
		f := &p.m.Flows[fi]
		ins := p.topo.Endpoints[f.Src].Instance
		e := p.built[ins]
		if e == nil {
			e = &instEntry{site: ck.Pair.Src, slots: make(map[uint32]pathSlot, 4)}
			p.built[ins] = e
		}
		dst := uint32(f.Pair.Dst)
		if s, ok := e.slots[dst]; !ok || fi >= s.flow {
			e.slots[dst] = pathSlot{flow: fi, tn: ck.Tunnels[t]}
			e.dirty = true
		}
		set := p.dirty[e.site]
		if set == nil {
			set = make(map[string]struct{})
			p.dirty[e.site] = set
		}
		set[ins] = struct{}{}
	}
}

// encode builds the instance's current InstanceConfig from its slots and
// returns its version-independent hash plus serialized bytes.
func (p *streamPublisher) encode(ins string) (uint64, []byte, error) {
	e := p.built[ins]
	cfg := &InstanceConfig{Instance: ins, Version: p.version}
	dsts := make([]uint32, 0, len(e.slots))
	for dst := range e.slots {
		dsts = append(dsts, dst)
	}
	sort.Slice(dsts, func(a, b int) bool { return dsts[a] < dsts[b] })
	for _, dst := range dsts {
		tn := e.slots[dst].tn
		hops := make([]uint32, len(tn.Sites))
		for j, s := range tn.Sites {
			hops[j] = uint32(s)
		}
		cfg.Paths = append(cfg.Paths, PathEntry{DstSite: dst, Hops: hops})
	}
	h := configHash(cfg)
	data, err := json.Marshal(cfg)
	if err != nil {
		return 0, nil, fmt.Errorf("controlplane: marshal config for %s: %w", ins, err)
	}
	return h, data, nil
}

// flushSite writes the dirty instances of src as one batch. Records whose
// hash matches what is already durable (from this stream or the previous
// interval) are skipped, mirroring the delta layer.
func (p *streamPublisher) flushSite(src topology.SiteID) {
	if p.err != nil {
		return
	}
	set := p.dirty[src]
	if len(set) == 0 {
		return
	}
	delete(p.dirty, src)
	inss := make([]string, 0, len(set))
	for ins := range set {
		inss = append(inss, ins)
	}
	sort.Strings(inss)

	encodeStart := time.Now()
	var names []string
	var hashes []uint64
	var keys []string
	var vals [][]byte
	for _, ins := range inss {
		h, data, err := p.encode(ins)
		if err != nil {
			p.err = err
			return
		}
		e := p.built[ins]
		e.eval, e.hash, e.dirty = true, h, false
		if wh, ok := p.wrote[ins]; ok {
			if wh == h {
				continue
			}
		} else if lh, ok := p.c.lastHash[ins]; ok && lh == h {
			continue
		}
		names = append(names, ins)
		hashes = append(hashes, h)
		keys = append(keys, ConfigKey(ins))
		vals = append(vals, data)
	}
	p.cm.streamStage["encode"].Observe(time.Since(encodeStart).Seconds())
	p.flush(names, hashes, keys, vals)
}

// flush issues the batched store write and updates durability tracking. A
// failed record drops both its streamed hash and its delta hash, so the
// finish sweep (and, failing that, the next interval) rewrites it — the same
// recovery rule as the barriered publisher. Failures do not touch the stats
// here; the sweep's retry is where they are counted exactly once.
func (p *streamPublisher) flush(names []string, hashes []uint64, keys []string, vals [][]byte) {
	if len(keys) == 0 {
		return
	}
	start := time.Now()
	failed, err := putConfigBatch(p.c.Store, keys, vals)
	p.cm.streamStage["flush"].Observe(time.Since(start).Seconds())
	failedSet := make(map[int]struct{}, len(failed))
	for _, i := range failed {
		failedSet[i] = struct{}{}
	}
	for i, ins := range names {
		if _, bad := failedSet[i]; bad {
			delete(p.wrote, ins)
			delete(p.c.lastHash, ins)
			continue
		}
		p.wrote[ins] = hashes[i]
		p.streamed++
	}
	if err != nil && !p.c.TolerateWriteErrors && p.err == nil {
		p.err = err
	}
}

// finish runs on the controller goroutine after the consumer has been
// joined: sweep every built instance to its final bytes, delete stale
// records, publish the version. The returned stats match what the barriered
// RunInterval would report for the same assignment.
func (p *streamPublisher) finish() (IntervalStats, error) {
	st := IntervalStats{}
	// p.err is a strict-mode write failure or a marshal failure; both abort
	// the interval before any version is published, like RunInterval.
	if p.err != nil {
		return st, p.err
	}

	sweepStart := time.Now()
	instances := make([]string, 0, len(p.built))
	for ins := range p.built {
		instances = append(instances, ins)
	}
	sort.Strings(instances)

	var names []string
	var hashes []uint64
	var keys []string
	var vals [][]byte
	for _, ins := range instances {
		// Untouched since its flush evaluation: reuse the memoized hash and
		// skip the (dominant at scale) re-encode.
		e := p.built[ins]
		var h uint64
		var data []byte
		if e.eval && !e.dirty {
			h = e.hash
		} else {
			var err error
			h, data, err = p.encode(ins)
			if err != nil {
				return st, err
			}
		}
		if wh, ok := p.wrote[ins]; ok && wh == h {
			// The streamed bytes already are the final bytes.
			p.c.lastHash[ins] = h
			st.Written++
			continue
		}
		if _, ok := p.wrote[ins]; !ok {
			if lh, ok := p.c.lastHash[ins]; ok && lh == h {
				st.Unchanged++
				continue
			}
		}
		if data == nil {
			// Memoized-hash path that still needs a write (its streamed
			// flush failed): serialize now.
			var err error
			h, data, err = p.encode(ins)
			if err != nil {
				return st, err
			}
		}
		names = append(names, ins)
		hashes = append(hashes, h)
		keys = append(keys, ConfigKey(ins))
		vals = append(vals, data)
	}
	overlapped := st.Written
	if len(keys) > 0 {
		failed, err := putConfigBatch(p.c.Store, keys, vals)
		failedSet := make(map[int]struct{}, len(failed))
		for _, i := range failed {
			failedSet[i] = struct{}{}
		}
		for i, ins := range names {
			if _, bad := failedSet[i]; bad {
				delete(p.c.lastHash, ins)
				st.WriteErrors++
				continue
			}
			p.c.lastHash[ins] = hashes[i]
			st.Written++
		}
		if err != nil && !p.c.TolerateWriteErrors {
			return st, fmt.Errorf("controlplane: streamed publish: %w", err)
		}
	}

	stale := make([]string, 0, len(p.c.lastHash))
	for ins := range p.c.lastHash {
		if _, ok := p.built[ins]; !ok {
			stale = append(stale, ins)
		}
	}
	sort.Strings(stale)
	for _, ins := range stale {
		if err := p.c.Store.DeleteConfig(ConfigKey(ins)); err != nil {
			if !p.c.TolerateWriteErrors {
				return st, fmt.Errorf("controlplane: delete config for %s: %w", ins, err)
			}
			st.WriteErrors++
			continue
		}
		delete(p.c.lastHash, ins)
		st.Deleted++
	}

	if err := p.c.Store.PublishVersion(p.version); err != nil {
		if !p.c.TolerateWriteErrors {
			return st, err
		}
		st.WriteErrors++
	}
	p.cm.streamStage["sweep"].Observe(time.Since(sweepStart).Seconds())
	if total := st.Written; total > 0 {
		p.cm.overlapFrac.Set(float64(overlapped) / float64(total))
	} else {
		p.cm.overlapFrac.Set(0)
	}
	return st, nil
}

// RunIntervalStreaming executes one TE interval with the streaming pipeline:
// stage-two results are encoded and written to the store while later sites
// are still solving, so publication overlaps the solve instead of trailing
// it. The final store contents, published version, and interval stats are
// identical to RunInterval on the same matrix — intermediate writes stay
// invisible to agents until the version is published at the end.
func (c *Controller) RunIntervalStreaming(m *traffic.Matrix) (*core.Result, int, error) {
	cm := c.metrics()
	intervalStart := time.Now()
	next := c.version.Load() + 1
	p := newStreamPublisher(c, cm, m, next)
	p.consumer.Add(1)
	go func() {
		defer p.consumer.Done()
		p.run()
	}()
	res, solveErr := c.Solver.SolveStream(m, p)
	// Close the stream and join the consumer on every path — a leaked
	// consumer would hold pooled chunks and race the next interval.
	close(p.ch)
	p.consumer.Wait()
	cm.streamDepth.Set(0)
	if solveErr != nil {
		cm.solveFails.Inc()
		return nil, 0, solveErr
	}
	cm.stage["sitemerge"].Observe(res.SiteMergeTime.Seconds())
	cm.stage["maxsiteflow"].Observe(res.SiteLPTime.Seconds())
	cm.stage["fastssp"].Observe(res.SSPTime.Seconds())
	publishStart := time.Now()
	st, err := p.finish()
	if err != nil {
		return nil, 0, err
	}
	c.version.Store(next)
	st.noteFastPath(res, cm)
	c.stats = st
	cm.stage["publish"].Observe(time.Since(publishStart).Seconds())
	cm.interval.Observe(time.Since(intervalStart).Seconds())
	cm.intervals.Inc()
	cm.written.Add(uint64(st.Written))
	cm.deleted.Add(uint64(st.Deleted))
	cm.skipped.Add(uint64(st.Unchanged))
	cm.writeErrs.Add(uint64(st.WriteErrors))
	return res, st.Written, nil
}
