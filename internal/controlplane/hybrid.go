package controlplane

import (
	"sort"
	"time"
)

// HybridPlan implements the hybrid synchronization of §8: production
// measurements show a small part of the flows account for most of the
// traffic, so the controller keeps persistent push connections to the
// heavy-traffic instances (immediate convergence on failure) and lets the
// long tail poll with eventual consistency.
type HybridPlan struct {
	// Persistent lists the heavy-hitter instances, descending by volume.
	Persistent []string
	// Polling lists the rest.
	Polling []string
	// PersistentShare is the traffic fraction the persistent set covers.
	PersistentShare float64
}

// PlanHybrid selects the smallest instance set covering at least
// coverShare of the total traffic volume for persistent connections.
// coverShare outside (0, 1) degenerates to all-polling or all-persistent.
func PlanHybrid(volumes map[string]float64, coverShare float64) HybridPlan {
	type iv struct {
		ins string
		v   float64
	}
	items := make([]iv, 0, len(volumes))
	total := 0.0
	for ins, v := range volumes {
		items = append(items, iv{ins, v})
		total += v
	}
	sort.Slice(items, func(a, b int) bool {
		if items[a].v != items[b].v {
			return items[a].v > items[b].v
		}
		return items[a].ins < items[b].ins
	})

	var plan HybridPlan
	if total <= 0 || coverShare <= 0 {
		for _, it := range items {
			plan.Polling = append(plan.Polling, it.ins)
		}
		return plan
	}
	covered := 0.0
	for _, it := range items {
		if covered < coverShare*total {
			plan.Persistent = append(plan.Persistent, it.ins)
			covered += it.v
		} else {
			plan.Polling = append(plan.Polling, it.ins)
		}
	}
	if total > 0 {
		plan.PersistentShare = covered / total
	}
	return plan
}

// ConvergedShare returns the fraction of traffic running on up-to-date
// configuration at `elapsed` after a publish: the persistent share
// converges immediately (push), while polled traffic converges linearly
// across the spread window.
func (p HybridPlan) ConvergedShare(elapsed, window time.Duration) float64 {
	polled := 1 - p.PersistentShare
	if window <= 0 || elapsed >= window {
		return 1
	}
	if elapsed < 0 {
		elapsed = 0
	}
	frac := float64(elapsed) / float64(window)
	return p.PersistentShare + polled*frac
}

// HybridCost estimates controller resources under the plan: top-down cost
// for the persistent set plus the constant bottom-up controller, with the
// database sharded for the polling population.
type HybridCost struct {
	Cores    float64
	MemBytes float64
	DBShards int
}

// Cost evaluates the plan against the given models and poll window.
func (p HybridPlan) Cost(td TopDownCost, bu BottomUpCost, window time.Duration) HybridCost {
	return HybridCost{
		Cores:    bu.ControllerCores + td.CoresFor(len(p.Persistent)),
		MemBytes: bu.ControllerBytes + td.MemBytesFor(len(p.Persistent)),
		DBShards: bu.ShardsFor(len(p.Polling), window),
	}
}
