package controlplane

import (
	"megate/internal/cluster"
	"megate/internal/kvstore"
)

// ClusterAdapter adapts a *cluster.Client — the sharded TE database — to
// every control-plane interface: ConfigStore for the controller's routed
// writes (each record lands on its key's owning shard), ConfigReader and
// ConfigSource for recovery's scatter-gather enumeration. The controller
// pairing it with TolerateWriteErrors gets the intended shard-loss posture:
// records homed on a dead shard fail individually while every surviving
// shard keeps converging.
type ClusterAdapter struct{ Client *cluster.Client }

// PutConfig implements ConfigStore.
func (a ClusterAdapter) PutConfig(key string, value []byte) error {
	return a.Client.Put(key, value)
}

// DeleteConfig implements ConfigStore.
func (a ClusterAdapter) DeleteConfig(key string) error {
	return a.Client.Delete(key)
}

// PublishVersion implements ConfigStore; the epoch fans out to every shard.
func (a ClusterAdapter) PublishVersion(v uint64) error {
	return a.Client.Publish(v)
}

// PutConfigBatch implements BatchConfigStore: records are grouped by owning
// shard and each shard gets one pipelined round-trip, shards in parallel —
// the write path the streaming publisher encodes into directly.
func (a ClusterAdapter) PutConfigBatch(keys []string, values [][]byte) ([]int, error) {
	return a.Client.PutBatch(keys, values)
}

// ReadVersion implements ConfigReader: the cluster version, i.e. the
// minimum epoch across shards.
func (a ClusterAdapter) ReadVersion() (uint64, error) { return a.Client.Version() }

// ReadConfig implements ConfigReader.
func (a ClusterAdapter) ReadConfig(key string) ([]byte, bool, error) {
	return a.Client.Get(key)
}

// ListConfigKeys implements ConfigSource.
func (a ClusterAdapter) ListConfigKeys(prefix string) ([]string, error) {
	return a.Client.Keys(prefix)
}

// ClusterHomeReader is the agent-side view of the sharded database: both
// the version poll and the config pull go only to the shard owning the
// agent's own config key. That is what keeps the poll load of §3.2 flat as
// shards are added — an agent never touches, and never depends on, any
// shard but its home — and what scopes a shard outage to exactly the agents
// homed on it.
type ClusterHomeReader struct {
	Client *cluster.Client
	// Key is the agent's config key (ConfigKey(instance)); it determines the
	// home shard.
	Key string
}

// ReadVersion implements ConfigReader with the home shard's epoch.
func (r ClusterHomeReader) ReadVersion() (uint64, error) {
	return r.Client.OwnerVersion(r.Key)
}

// ReadConfig implements ConfigReader, routed to the owning shard.
func (r ClusterHomeReader) ReadConfig(key string) ([]byte, bool, error) {
	return r.Client.Get(key)
}

// ReadSnapshot implements DeltaSource against the home shard only: the
// snapshot covers exactly the keys the home shard owns, which includes the
// agent's own config key by construction.
func (r ClusterHomeReader) ReadSnapshot(prefix string) (uint64, map[string][]byte, error) {
	return r.Client.OwnerSnapshot(r.Key, prefix)
}

// ReadDelta implements DeltaSource against the home shard only.
func (r ClusterHomeReader) ReadDelta(since uint64, prefix string) (uint64, []kvstore.DeltaEntry, error) {
	return r.Client.OwnerDelta(r.Key, since, prefix)
}
