package controlplane

import (
	"fmt"
	"sort"
	"time"

	"megate/internal/hoststack"
	"megate/internal/packet"
	"megate/internal/topology"
	"megate/internal/traffic"
)

// IPPlan assigns every endpoint an IPv4 address of the form 10.<site>.<hi>.<lo>
// and resolves addresses back to endpoints and sites — the VPC mapping the
// host stack and routers consult. Sites must number at most 256 and
// endpoints per site at most 65536.
type IPPlan struct {
	topo *topology.Topology
	byIP map[[4]byte]topology.EndpointID
	ips  [][4]byte // indexed by EndpointID
}

// NewIPPlan builds the address plan for the topology's current endpoints.
func NewIPPlan(topo *topology.Topology) (*IPPlan, error) {
	if topo.NumSites() > 256 {
		return nil, fmt.Errorf("controlplane: ip plan supports at most 256 sites, have %d", topo.NumSites())
	}
	p := &IPPlan{
		topo: topo,
		byIP: make(map[[4]byte]topology.EndpointID, topo.NumEndpoints()),
		ips:  make([][4]byte, topo.NumEndpoints()),
	}
	idxInSite := make([]int, topo.NumSites())
	for _, ep := range topo.Endpoints {
		idx := idxInSite[ep.Site]
		idxInSite[ep.Site]++
		if idx >= 1<<16 {
			return nil, fmt.Errorf("controlplane: site %d exceeds 65536 endpoints", ep.Site)
		}
		ip := [4]byte{10, byte(ep.Site), byte(idx >> 8), byte(idx)}
		p.ips[ep.ID] = ip
		p.byIP[ip] = ep.ID
	}
	return p, nil
}

// IPOf returns the endpoint's address.
func (p *IPPlan) IPOf(ep topology.EndpointID) [4]byte { return p.ips[ep] }

// EndpointOf resolves an address.
func (p *IPPlan) EndpointOf(ip [4]byte) (topology.EndpointID, bool) {
	ep, ok := p.byIP[ip]
	return ep, ok
}

// SiteOf resolves an address to its site, the ipToSite function hosts and
// routers need.
func (p *IPPlan) SiteOf(ip [4]byte) (uint32, bool) {
	if ip[0] != 10 || int(ip[1]) >= p.topo.NumSites() {
		return 0, false
	}
	return uint32(ip[1]), true
}

// DemandEstimator turns the instance-level flow records collected by host
// stacks into the next interval's traffic matrix — the closed measurement
// loop of §5.1 ("the scheduler makes decisions based solely on the observed
// ongoing traffic bandwidth", §8). Per-flow demand is smoothed with an
// exponentially weighted moving average across TE intervals.
type DemandEstimator struct {
	// Alpha is the EWMA weight of the newest observation; default 0.5.
	Alpha float64
	// Interval is the TE period the byte counts cover; default 5 minutes.
	Interval time.Duration
	// DefaultClass tags flows whose class is unknown; default Class2.
	DefaultClass traffic.Class

	plan  *IPPlan
	state map[packet.FiveTuple]float64
}

// NewDemandEstimator creates an estimator over the address plan.
func NewDemandEstimator(plan *IPPlan) *DemandEstimator {
	return &DemandEstimator{plan: plan, state: make(map[packet.FiveTuple]float64)}
}

// Observe folds one interval's collected records into the EWMA state.
// Records whose tuple does not resolve to known endpoints are ignored and
// counted in the return value.
func (e *DemandEstimator) Observe(records []hoststack.FlowRecord) (unresolved int) {
	alpha := e.Alpha
	if alpha <= 0 || alpha > 1 {
		alpha = 0.5
	}
	interval := e.Interval
	if interval <= 0 {
		interval = 5 * time.Minute
	}
	for _, rec := range records {
		if _, ok := e.plan.EndpointOf(rec.Tuple.SrcIP); !ok {
			unresolved++
			continue
		}
		if _, ok := e.plan.EndpointOf(rec.Tuple.DstIP); !ok {
			unresolved++
			continue
		}
		mbps := float64(rec.Bytes) * 8 / interval.Seconds() / 1e6
		old, seen := e.state[rec.Tuple]
		if !seen {
			e.state[rec.Tuple] = mbps
		} else {
			e.state[rec.Tuple] = alpha*mbps + (1-alpha)*old
		}
	}
	return unresolved
}

// Matrix materializes the current estimates as a traffic matrix for the
// next TE interval. Flow IDs are assigned in deterministic tuple order.
func (e *DemandEstimator) Matrix() *traffic.Matrix {
	tuples := make([]packet.FiveTuple, 0, len(e.state))
	for t := range e.state {
		tuples = append(tuples, t)
	}
	sort.Slice(tuples, func(a, b int) bool { return tupleLess(tuples[a], tuples[b]) })

	class := e.DefaultClass
	if class == 0 {
		class = traffic.Class2
	}
	var flows []traffic.Flow
	for i, t := range tuples {
		src, _ := e.plan.EndpointOf(t.SrcIP)
		dst, _ := e.plan.EndpointOf(t.DstIP)
		srcSite := e.plan.topo.Endpoints[src].Site
		dstSite := e.plan.topo.Endpoints[dst].Site
		if srcSite == dstSite {
			continue // intra-site traffic never enters the WAN
		}
		flows = append(flows, traffic.Flow{
			ID:  i,
			Src: src, Dst: dst,
			Pair:       traffic.SitePair{Src: srcSite, Dst: dstSite},
			DemandMbps: e.state[t],
			Class:      class,
		})
	}
	return traffic.NewMatrix(flows)
}

// VolumeByInstance aggregates observed volume per source instance, the
// input PlanHybrid consumes.
func VolumeByInstance(records []hoststack.FlowRecord) map[string]float64 {
	out := make(map[string]float64)
	for _, rec := range records {
		if rec.Instance != "" {
			out[rec.Instance] += float64(rec.Bytes)
		}
	}
	return out
}

func tupleLess(a, b packet.FiveTuple) bool {
	pa, pb := hoststack.PackTuple(a), hoststack.PackTuple(b)
	for i := range pa {
		if pa[i] != pb[i] {
			return pa[i] < pb[i]
		}
	}
	return false
}
