package controlplane

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"megate/internal/cluster"
	"megate/internal/core"
	"megate/internal/hoststack"
	"megate/internal/kvstore"
	"megate/internal/telemetry"
)

// flakyStore fails operations by key predicate — a shard that stopped
// accepting writes, seen through the ConfigStore interface.
type flakyStore struct {
	inner       ConfigStore
	failKey     func(key string) bool
	failPublish bool
}

func (f *flakyStore) PutConfig(key string, value []byte) error {
	if f.failKey != nil && f.failKey(key) {
		return errors.New("flakyStore: shard down")
	}
	return f.inner.PutConfig(key, value)
}

func (f *flakyStore) DeleteConfig(key string) error {
	if f.failKey != nil && f.failKey(key) {
		return errors.New("flakyStore: shard down")
	}
	return f.inner.DeleteConfig(key)
}

func (f *flakyStore) PublishVersion(v uint64) error {
	if f.failPublish {
		return errors.New("flakyStore: publish lost")
	}
	return f.inner.PublishVersion(v)
}

// TestControllerToleratesWriteErrors pins the shard-loss posture: with
// TolerateWriteErrors the interval keeps writing past per-record failures,
// counts them, still advances the version, and — because failed writes drop
// their hash — rewrites exactly the missed records once the store heals.
func TestControllerToleratesWriteErrors(t *testing.T) {
	_, m, solver := testSetup(t)
	store := kvstore.NewStore(2)
	flaky := &flakyStore{inner: StoreAdapter{Store: store}}
	ctrl := NewController(solver, flaky)
	ctrl.Metrics = telemetry.NewRegistry()
	ctrl.TolerateWriteErrors = true

	// Fail every config record in the upper half of the key space plus the
	// publish itself — one shard of two is down on the very first interval.
	flaky.failKey = func(key string) bool { return key >= "te/cfg/m" }
	flaky.failPublish = true
	_, _, err := ctrl.RunInterval(m)
	if err != nil {
		t.Fatalf("tolerant interval failed: %v", err)
	}
	st := ctrl.LastStats()
	if st.WriteErrors == 0 {
		t.Fatal("no write errors recorded while half the key space was down")
	}
	if st.Written == 0 {
		t.Fatal("no records written; the surviving half must still converge")
	}
	if ctrl.Version() != 1 {
		t.Fatalf("controller version = %d, want 1 (tolerated publish failure still advances)", ctrl.Version())
	}
	if store.Version() != 0 {
		t.Fatalf("store version = %d, want 0 (publish was lost)", store.Version())
	}
	failedFirst := st.WriteErrors - 1 // publish failure is one of them

	// Shard heals: the next interval rewrites exactly the dropped records
	// (the solver output is unchanged, so nothing else is dirty) and the
	// publish goes through at the next version.
	flaky.failKey = nil
	flaky.failPublish = false
	if _, _, err := ctrl.RunInterval(m); err != nil {
		t.Fatal(err)
	}
	st2 := ctrl.LastStats()
	if st2.WriteErrors != 0 {
		t.Fatalf("healed interval recorded %d write errors", st2.WriteErrors)
	}
	if st2.Written != failedFirst {
		t.Fatalf("healed interval rewrote %d records, want the %d that failed", st2.Written, failedFirst)
	}
	if store.Version() != 2 || ctrl.Version() != 2 {
		t.Fatalf("versions = %d / %d, want 2 / 2", store.Version(), ctrl.Version())
	}
	reg := ctrl.Metrics
	if got := reg.Counter(MetricConfigWriteErrors).Value(); got != uint64(st.WriteErrors) {
		t.Errorf("write-error counter = %d, want %d", got, st.WriteErrors)
	}

	// Without tolerance the same failure aborts the interval.
	strict := NewController(core.NewSolver(solver.Topology(), core.Options{}), flaky)
	strict.Metrics = telemetry.NewRegistry()
	flaky.failKey = func(string) bool { return true }
	if _, _, err := strict.RunInterval(m); err == nil {
		t.Fatal("strict controller survived a failing store")
	}
}

// TestClusterAdapterControlLoop runs the full bottom-up loop over a sharded
// database: the controller writes through a ClusterAdapter (records routed
// to their owning shards), an agent polls through a ClusterHomeReader and
// installs its paths, and a restarted controller recovers its delta state
// from the scatter-gathered enumeration.
func TestClusterAdapterControlLoop(t *testing.T) {
	topo, m, solver := testSetup(t)
	reg := telemetry.NewRegistry()
	cc := cluster.New(32, 5, func(c *cluster.Client) { c.Metrics = reg })
	defer cc.Close()
	for i := 0; i < 3; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := kvstore.Serve(l, kvstore.NewStore(2), kvstore.WithMetrics(reg))
		t.Cleanup(srv.Close)
		if err := cc.Join(fmt.Sprintf("db%d", i), &kvstore.Client{Addr: srv.Addr(), Timeout: time.Second, Metrics: reg}); err != nil {
			t.Fatal(err)
		}
	}

	ctrl := NewController(solver, ClusterAdapter{Client: cc})
	ctrl.Metrics = reg
	ctrl.TolerateWriteErrors = true
	res, n, err := ctrl.RunInterval(m)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || ctrl.LastStats().WriteErrors != 0 {
		t.Fatalf("interval wrote %d records with %d errors", n, ctrl.LastStats().WriteErrors)
	}
	if v, err := cc.Version(); err != nil || v != 1 {
		t.Fatalf("cluster version = %d, %v", v, err)
	}

	// One configured instance polls its home shard and installs paths.
	var instance string
	for i, tn := range res.FlowTunnel {
		if tn != nil {
			instance = topo.Endpoints[m.Flows[i].Src].Instance
			break
		}
	}
	if instance == "" {
		t.Skip("no satisfied flows")
	}
	host := hoststack.NewHost("h", 1500, func([4]byte) (uint32, bool) { return 0, false })
	defer host.Close()
	agent := &Agent{
		Instance: instance,
		Reader:   ClusterHomeReader{Client: cc, Key: ConfigKey(instance)},
		Host:     host,
		Metrics:  reg,
	}
	updated, err := agent.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if !updated || host.PathMap.Len() == 0 {
		t.Fatalf("agent did not install config: updated=%v paths=%d", updated, host.PathMap.Len())
	}

	// Restart recovery over the sharded enumeration: a fresh controller
	// re-derives the full delta state and its next interval rewrites nothing.
	ctrl2 := NewController(core.NewSolver(topo, core.Options{}), ClusterAdapter{Client: cc})
	ctrl2.Metrics = reg
	restored, err := ctrl2.Recover(ClusterAdapter{Client: cc})
	if err != nil {
		t.Fatal(err)
	}
	if restored != n {
		t.Fatalf("recovered %d records, interval wrote %d", restored, n)
	}
	if ctrl2.Version() != 1 {
		t.Fatalf("recovered version = %d, want 1", ctrl2.Version())
	}
	if _, _, err := ctrl2.RunInterval(m); err != nil {
		t.Fatal(err)
	}
	if st := ctrl2.LastStats(); st.Written != 0 || st.Deleted != 0 {
		t.Fatalf("recovered controller rewrote %d / deleted %d records; delta state not restored", st.Written, st.Deleted)
	}

	// Config keys share the te/cfg/ prefix; make sure the shards actually
	// split them rather than one node owning everything.
	owners := make(map[string]int)
	keys, err := cc.Keys("te/cfg/")
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		owners[cc.Owner(k)]++
	}
	if len(keys) >= 8 && len(owners) < 2 {
		t.Errorf("all %d config keys owned by one node %v; partitioning is not spreading", len(keys), owners)
	}
	if !strings.HasPrefix(keys[0], "te/cfg/") {
		t.Errorf("unexpected key %q", keys[0])
	}
}
