package controlplane

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"megate/internal/hoststack"
	"megate/internal/kvstore"
)

// scriptReader is a ConfigReader whose behavior flips per call: it serves a
// backing store until failing is set, then errors every operation.
type scriptReader struct {
	store   *kvstore.Store
	failing bool
	// badJSON, when set, overrides the record bytes for any ReadConfig.
	badJSON []byte
}

var errScripted = errors.New("scripted transport failure")

func (s *scriptReader) ReadVersion() (uint64, error) {
	if s.failing {
		return 0, errScripted
	}
	return s.store.Version(), nil
}

func (s *scriptReader) ReadConfig(key string) ([]byte, bool, error) {
	if s.failing {
		return nil, false, errScripted
	}
	if s.badJSON != nil {
		return s.badJSON, true, nil
	}
	v, ok := s.store.Get(key)
	return v, ok, nil
}

func putConfig(t *testing.T, store *kvstore.Store, ins string, version uint64, paths []PathEntry) {
	t.Helper()
	data, err := json.Marshal(InstanceConfig{Instance: ins, Version: version, Paths: paths})
	if err != nil {
		t.Fatal(err)
	}
	store.Put(ConfigKey(ins), data)
	store.Publish(version)
}

func TestAgentCountsUnreachableReader(t *testing.T) {
	sr := &scriptReader{store: kvstore.NewStore(1), failing: true}
	agent := &Agent{Instance: "ins-x", Reader: sr}
	for i := 1; i <= 3; i++ {
		if _, err := agent.Poll(); !errors.Is(err, errScripted) {
			t.Fatalf("poll %d: err = %v", i, err)
		}
		if agent.Errors() != uint64(i) {
			t.Fatalf("poll %d: errors = %d, want %d", i, agent.Errors(), i)
		}
	}
}

func TestAgentCountsBadJSON(t *testing.T) {
	store := kvstore.NewStore(1)
	sr := &scriptReader{store: store, badJSON: []byte(`{"instance": "ins-x", "paths": [tor`)}
	store.Publish(1)
	agent := &Agent{Instance: "ins-x", Reader: sr}
	_, err := agent.Poll()
	if err == nil || !strings.Contains(err.Error(), "bad config") {
		t.Fatalf("err = %v, want bad config", err)
	}
	if agent.Errors() != 1 {
		t.Errorf("errors = %d, want 1: bad JSON must be counted", agent.Errors())
	}
	// The version was not consumed: a later good record is still picked up.
	sr.badJSON = nil
	putConfig(t, store, "ins-x", 1, nil)
	if applied, err := agent.Poll(); err != nil || !applied {
		t.Fatalf("recovery poll: applied=%v err=%v", applied, err)
	}
}

func TestAgentBadJSONKeepsInstalledPaths(t *testing.T) {
	store := kvstore.NewStore(1)
	sr := &scriptReader{store: store}
	host := hoststack.NewHost("h", 1500, func([4]byte) (uint32, bool) { return 0, false })
	defer host.Close()
	agent := &Agent{Instance: "ins-x", Reader: sr, Host: host}

	putConfig(t, store, "ins-x", 1, []PathEntry{{DstSite: 3, Hops: []uint32{0, 3}}})
	if _, err := agent.Poll(); err != nil {
		t.Fatal(err)
	}
	if host.PathMap.Len() != 1 {
		t.Fatalf("paths = %d, want 1", host.PathMap.Len())
	}
	// A corrupt record at a new version must not tear down the valid paths.
	store.Publish(2)
	sr.badJSON = []byte("not json")
	if _, err := agent.Poll(); err == nil {
		t.Fatal("poll of corrupt record succeeded")
	}
	if host.PathMap.Len() != 1 {
		t.Errorf("paths = %d after corrupt record, want 1 (keep last good)", host.PathMap.Len())
	}
}

func TestAgentNoRecordRemovesStaleInstalled(t *testing.T) {
	store := kvstore.NewStore(1)
	host := hoststack.NewHost("h", 1500, func([4]byte) (uint32, bool) { return 0, false })
	defer host.Close()
	agent := &Agent{Instance: "ins-x", Reader: StoreAdapter{Store: store}, Host: host}

	putConfig(t, store, "ins-x", 1, []PathEntry{{DstSite: 3, Hops: []uint32{0, 3}}})
	if _, err := agent.Poll(); err != nil {
		t.Fatal(err)
	}
	if host.PathMap.Len() != 1 {
		t.Fatalf("paths = %d, want 1", host.PathMap.Len())
	}
	// New version with the record gone: all flows rejected / no traffic.
	store.Delete(ConfigKey("ins-x"))
	store.Publish(2)
	applied, err := agent.Poll()
	if err != nil || !applied {
		t.Fatalf("applied=%v err=%v", applied, err)
	}
	if host.PathMap.Len() != 0 {
		t.Errorf("paths = %d, want 0 after record removal", host.PathMap.Len())
	}
	if agent.LastVersion() != 2 {
		t.Errorf("lastVersion = %d, want 2", agent.LastVersion())
	}
}

func TestAgentStalenessTTLFallbackAndRecovery(t *testing.T) {
	store := kvstore.NewStore(1)
	sr := &scriptReader{store: store}
	host := hoststack.NewHost("h", 1500, func([4]byte) (uint32, bool) { return 0, false })
	defer host.Close()
	agent := &Agent{Instance: "ins-x", Reader: sr, Host: host, StaleAfter: 3}

	putConfig(t, store, "ins-x", 1, []PathEntry{
		{DstSite: 3, Hops: []uint32{0, 3}},
		{DstSite: 5, Hops: []uint32{0, 5}},
	})
	if _, err := agent.Poll(); err != nil {
		t.Fatal(err)
	}
	if host.PathMap.Len() != 2 {
		t.Fatalf("paths = %d, want 2", host.PathMap.Len())
	}

	// Two failures: below the TTL, paths stay pinned.
	sr.failing = true
	for i := 0; i < 2; i++ {
		if _, err := agent.Poll(); err == nil {
			t.Fatal("poll during partition succeeded")
		}
	}
	if agent.Degraded() || host.PathMap.Len() != 2 {
		t.Fatalf("degraded=%v paths=%d before TTL, want pinned", agent.Degraded(), host.PathMap.Len())
	}
	// Third consecutive failure fires the TTL: conventional-routing fallback.
	if _, err := agent.Poll(); err == nil {
		t.Fatal("poll during partition succeeded")
	}
	if !agent.Degraded() {
		t.Fatal("TTL did not fire after StaleAfter failures")
	}
	if host.PathMap.Len() != 0 {
		t.Fatalf("paths = %d during degradation, want 0 (conventional routing)", host.PathMap.Len())
	}
	if fb, rec := agent.FallbackStats(); fb != 1 || rec != 0 {
		t.Errorf("fallbacks=%d recoveries=%d, want 1/0", fb, rec)
	}

	// Heal. The published version never moved, but the degraded agent must
	// still re-pull and reinstall.
	sr.failing = false
	applied, err := agent.Poll()
	if err != nil || !applied {
		t.Fatalf("recovery poll: applied=%v err=%v", applied, err)
	}
	if agent.Degraded() {
		t.Error("still degraded after successful poll")
	}
	if host.PathMap.Len() != 2 {
		t.Errorf("paths = %d after recovery, want 2 reinstalled", host.PathMap.Len())
	}
	if fb, rec := agent.FallbackStats(); fb != 1 || rec != 1 {
		t.Errorf("fallbacks=%d recoveries=%d, want 1/1", fb, rec)
	}

	// An intermittent single failure after recovery must not re-fire the TTL
	// (the consecutive counter was reset).
	sr.failing = true
	if _, err := agent.Poll(); err == nil {
		t.Fatal("poll during blip succeeded")
	}
	sr.failing = false
	if _, err := agent.Poll(); err != nil {
		t.Fatal(err)
	}
	if agent.Degraded() {
		t.Error("single blip re-fired the TTL")
	}
	if host.PathMap.Len() != 2 {
		t.Errorf("paths = %d after blip, want 2", host.PathMap.Len())
	}
}

func TestAgentStalenessDisabledByDefault(t *testing.T) {
	store := kvstore.NewStore(1)
	sr := &scriptReader{store: store}
	host := hoststack.NewHost("h", 1500, func([4]byte) (uint32, bool) { return 0, false })
	defer host.Close()
	agent := &Agent{Instance: "ins-x", Reader: sr, Host: host} // StaleAfter == 0

	putConfig(t, store, "ins-x", 1, []PathEntry{{DstSite: 3, Hops: []uint32{0, 3}}})
	if _, err := agent.Poll(); err != nil {
		t.Fatal(err)
	}
	sr.failing = true
	for i := 0; i < 10; i++ {
		if _, err := agent.Poll(); err == nil {
			t.Fatal("poll during partition succeeded")
		}
	}
	if agent.Degraded() || host.PathMap.Len() != 1 {
		t.Errorf("degraded=%v paths=%d with TTL disabled, want pinned forever", agent.Degraded(), host.PathMap.Len())
	}
}
