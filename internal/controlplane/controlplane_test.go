package controlplane

import (
	"context"
	"encoding/json"
	"net"
	"testing"
	"time"

	"megate/internal/core"
	"megate/internal/hoststack"
	"megate/internal/kvstore"
	"megate/internal/topology"
	"megate/internal/traffic"
)

func testSetup(t *testing.T) (*topology.Topology, *traffic.Matrix, *core.Solver) {
	t.Helper()
	topo := topology.BuildB4()
	topology.AttachEndpointsExact(topo, 3)
	m := traffic.Generate(topo, traffic.GenOptions{Seed: 1, MeanDemandMbps: 20})
	return topo, m, core.NewSolver(topo, core.Options{})
}

func TestControllerRunIntervalPublishes(t *testing.T) {
	topo, m, solver := testSetup(t)
	store := kvstore.NewStore(2)
	ctrl := NewController(solver, StoreAdapter{Store: store})

	res, n, err := ctrl.RunInterval(m)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no configs written")
	}
	if store.Version() != 1 || ctrl.Version() != 1 {
		t.Errorf("version = %d / %d, want 1", store.Version(), ctrl.Version())
	}
	// Every satisfied flow's source instance must have a config with a
	// path toward the flow's destination site.
	for i, tn := range res.FlowTunnel {
		if tn == nil {
			continue
		}
		ins := topo.Endpoints[m.Flows[i].Src].Instance
		data, ok := store.Get(ConfigKey(ins))
		if !ok {
			t.Fatalf("no config for instance %s", ins)
		}
		_ = data
	}

	// A second interval bumps the version.
	if _, _, err := ctrl.RunInterval(m); err != nil {
		t.Fatal(err)
	}
	if store.Version() != 2 {
		t.Errorf("version = %d, want 2", store.Version())
	}
}

func TestBuildConfigsGrouping(t *testing.T) {
	topo, m, solver := testSetup(t)
	res, err := solver.Solve(m)
	if err != nil {
		t.Fatal(err)
	}
	configs := BuildConfigs(topo, m, res, 9)
	for ins, cfg := range configs {
		if cfg.Instance != ins || cfg.Version != 9 {
			t.Fatalf("config mismatch: %+v", cfg)
		}
		seen := map[uint32]bool{}
		for _, p := range cfg.Paths {
			if seen[p.DstSite] {
				t.Fatalf("instance %s has duplicate path for site %d", ins, p.DstSite)
			}
			seen[p.DstSite] = true
			if len(p.Hops) < 2 {
				t.Fatalf("path too short: %+v", p)
			}
		}
	}
}

func TestAgentPollAppliesConfig(t *testing.T) {
	topo, m, solver := testSetup(t)
	store := kvstore.NewStore(1)
	ctrl := NewController(solver, StoreAdapter{Store: store})
	if _, _, err := ctrl.RunInterval(m); err != nil {
		t.Fatal(err)
	}

	// Find an instance that got a config.
	var instance string
	for i, tn := range solverResult(t, solver, m).FlowTunnel {
		if tn != nil {
			instance = topo.Endpoints[m.Flows[i].Src].Instance
			break
		}
	}
	if instance == "" {
		t.Skip("no satisfied flows")
	}

	host := hoststack.NewHost("h", 1500, func([4]byte) (uint32, bool) { return 0, false })
	defer host.Close()
	agent := &Agent{Instance: instance, Reader: StoreAdapter{Store: store}, Host: host}

	updated, err := agent.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if !updated {
		t.Fatal("first poll should apply config")
	}
	if host.PathMap.Len() == 0 {
		t.Fatal("no paths installed")
	}
	if agent.LastVersion() != store.Version() {
		t.Error("agent version lag")
	}

	// Second poll: no change.
	updated, err = agent.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if updated {
		t.Error("poll with unchanged version should be a no-op")
	}
	polls, updates := agent.Stats()
	if polls != 2 || updates != 1 {
		t.Errorf("stats = %d polls, %d updates", polls, updates)
	}
}

func solverResult(t *testing.T, s *core.Solver, m *traffic.Matrix) *core.Result {
	t.Helper()
	res, err := s.Solve(m)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAgentForUnknownInstanceStillConverges(t *testing.T) {
	store := kvstore.NewStore(1)
	store.Publish(3)
	agent := &Agent{Instance: "ghost", Reader: StoreAdapter{Store: store}}
	updated, err := agent.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if !updated || agent.LastVersion() != 3 {
		t.Error("agent should converge to the published version even without a record")
	}
}

func TestBottomUpLoopOverTCP(t *testing.T) {
	// Full loop: controller -> kvstore server -> agents over real sockets.
	topo, m, solver := testSetup(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	store := kvstore.NewStore(2)
	srv := kvstore.Serve(l, store)
	defer srv.Close()

	ctrl := NewController(solver, ClientAdapter{Client: &kvstore.Client{Addr: srv.Addr()}})
	if _, n, err := ctrl.RunInterval(m); err != nil || n == 0 {
		t.Fatalf("interval: n=%d err=%v", n, err)
	}

	// Spin up agents for the first few instances, spread across slots.
	agents := make([]*Agent, 8)
	for i := range agents {
		agents[i] = &Agent{
			Instance:  topo.Endpoints[i].Instance,
			Reader:    ClientAdapter{Client: &kvstore.Client{Addr: srv.Addr()}},
			Slot:      i,
			SlotCount: len(agents),
		}
	}
	for _, a := range agents {
		if _, err := a.Poll(); err != nil {
			t.Fatal(err)
		}
		if a.LastVersion() != 1 {
			t.Errorf("agent %s at version %d", a.Instance, a.LastVersion())
		}
	}
}

func TestAgentSpreadDelays(t *testing.T) {
	window := 10 * time.Second
	n := 5
	seen := map[time.Duration]bool{}
	for i := 0; i < n; i++ {
		a := &Agent{Slot: i, SlotCount: n}
		d := a.SpreadDelay(window)
		if d < 0 || d >= window {
			t.Errorf("slot %d delay %v outside window", i, d)
		}
		if seen[d] {
			t.Errorf("duplicate delay %v", d)
		}
		seen[d] = true
	}
	a := &Agent{}
	if a.SpreadDelay(window) != 0 {
		t.Error("no slots means no delay")
	}
}

func TestAgentRunLoop(t *testing.T) {
	store := kvstore.NewStore(1)
	store.Publish(1)
	agent := &Agent{Instance: "x", Reader: StoreAdapter{Store: store}}
	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	defer cancel()
	err := agent.Run(ctx, 10*time.Millisecond)
	if err != context.DeadlineExceeded {
		t.Errorf("err = %v", err)
	}
	polls, _ := agent.Stats()
	if polls < 2 {
		t.Errorf("polls = %d, want several", polls)
	}
	if agent.LastVersion() != 1 {
		t.Error("agent did not converge during run loop")
	}
}

func TestTopDownPushAndHeartbeats(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeTopDown(l)
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	eps := make([]*TopDownEndpoint, 5)
	for i := range eps {
		eps[i] = &TopDownEndpoint{ID: string(rune('a' + i))}
		go eps[i].Run(ctx, srv.Addr(), 10*time.Millisecond)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Connections() < 5 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if srv.Connections() != 5 {
		t.Fatalf("connections = %d", srv.Connections())
	}

	time.Sleep(50 * time.Millisecond)
	if srv.Heartbeats() == 0 {
		t.Error("no heartbeats observed")
	}

	sent := srv.Push([]byte(`{"config":1}`))
	if sent != 5 {
		t.Errorf("pushed to %d endpoints", sent)
	}
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		all := true
		for _, ep := range eps {
			if ep.ConfigsReceived() == 0 {
				all = false
			}
		}
		if all {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	for i, ep := range eps {
		if ep.ConfigsReceived() == 0 {
			t.Errorf("endpoint %d received no config", i)
		}
	}
}

func TestPressureTestSmall(t *testing.T) {
	m, err := PressureTest(50, 20*time.Millisecond, 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if m.Connections != 50 {
		t.Errorf("connections = %d", m.Connections)
	}
	if m.Goroutines < 50 {
		t.Errorf("goroutines = %d, want >= 50 (one per endpoint at least)", m.Goroutines)
	}
	if m.CPUPercentOfCore() < 0 {
		t.Error("negative CPU")
	}
}

func TestCostModels(t *testing.T) {
	// Paper anchors: 1M endpoints -> ~167 cores, ~125 GB.
	c := PaperTopDownCost
	if got := c.CoresFor(1e6); got < 166 || got > 168 {
		t.Errorf("cores = %v", got)
	}
	if got := c.MemBytesFor(1e6); got < 124e9 || got > 126e9 {
		t.Errorf("mem = %v", got)
	}
	// 1000 endpoints: fine with a fraction of a core (the paper's "little
	// resources" point).
	if got := c.CoresFor(1000); got > 1 {
		t.Errorf("1000 endpoints need %v cores, want < 1", got)
	}

	b := PaperBottomUpCost
	// One million endpoints spread over a 10 s window: 100k QPS -> 2
	// shards, like the production deployment.
	if got := b.ShardsFor(1e6, 10*time.Second); got != 2 {
		t.Errorf("shards = %d, want 2", got)
	}
	if got := b.ShardsFor(100, 10*time.Second); got != 1 {
		t.Errorf("shards = %d, want 1", got)
	}
	if PeakQPS(1e6, 10*time.Second) != 100000 {
		t.Error("peak qps")
	}
}

func TestCalibrate(t *testing.T) {
	m := Measurement{Connections: 100, HeapBytes: 100 * 50_000, CPUSeconds: 0.5, Window: time.Second}
	c := Calibrate(m)
	if c.BytesPerConnection != 50_000 {
		t.Errorf("bytes/conn = %v", c.BytesPerConnection)
	}
	if c.CoresPerConnection != 0.005 {
		t.Errorf("cores/conn = %v", c.CoresPerConnection)
	}
	if got := Calibrate(Measurement{}); got.BytesPerConnection != 0 {
		t.Error("zero measurement should give zero model")
	}
}

func TestProcessCPUSeconds(t *testing.T) {
	a, err := processCPUSeconds()
	if err != nil {
		t.Skipf("no /proc: %v", err)
	}
	// Burn a little CPU.
	x := 0.0
	for i := 0; i < 5_000_000; i++ {
		x += float64(i)
	}
	_ = x
	b, err := processCPUSeconds()
	if err != nil {
		t.Fatal(err)
	}
	if b < a {
		t.Error("CPU time went backwards")
	}
}

func TestOnLinkFailureRecomputes(t *testing.T) {
	topo, m, solver := testSetup(t)
	store := kvstore.NewStore(1)
	ctrl := NewController(solver, StoreAdapter{Store: store})
	if _, _, err := ctrl.RunInterval(m); err != nil {
		t.Fatal(err)
	}
	topo.FailLink(0)
	res, _, err := ctrl.OnLinkFailure(m)
	if err != nil {
		t.Fatal(err)
	}
	for i, tn := range res.FlowTunnel {
		if tn == nil {
			continue
		}
		for _, l := range tn.Links {
			if topo.Links[l].Down {
				t.Fatalf("flow %d still routed over failed link", i)
			}
		}
	}
	if store.Version() != 2 {
		t.Error("failure recompute should publish a new version")
	}
}

func TestTopDownServerDoubleClose(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeTopDown(l)
	srv.Close()
	srv.Close() // must not panic
}

func TestAgentRemovesStalePaths(t *testing.T) {
	store := kvstore.NewStore(1)
	host := hoststack.NewHost("h", 1500, func([4]byte) (uint32, bool) { return 0, false })
	defer host.Close()
	agent := &Agent{Instance: "ins-x", Reader: StoreAdapter{Store: store}, Host: host}

	put := func(version uint64, paths []PathEntry) {
		cfg := InstanceConfig{Instance: "ins-x", Version: version, Paths: paths}
		data, err := json.Marshal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		store.Put(ConfigKey("ins-x"), data)
		store.Publish(version)
	}

	put(1, []PathEntry{{DstSite: 3, Hops: []uint32{0, 3}}, {DstSite: 5, Hops: []uint32{0, 5}}})
	if _, err := agent.Poll(); err != nil {
		t.Fatal(err)
	}
	if host.PathMap.Len() != 2 {
		t.Fatalf("paths = %d, want 2", host.PathMap.Len())
	}

	// New config drops site 5: the stale path must disappear.
	put(2, []PathEntry{{DstSite: 3, Hops: []uint32{0, 1, 3}}})
	if _, err := agent.Poll(); err != nil {
		t.Fatal(err)
	}
	if host.PathMap.Len() != 1 {
		t.Fatalf("paths = %d, want 1 after stale removal", host.PathMap.Len())
	}
	if _, ok := host.PathMap.Lookup(hoststack.PathKey{Instance: "ins-x", DstSite: 5}); ok {
		t.Fatal("stale path for site 5 survived")
	}
	if path, ok := host.PathMap.Lookup(hoststack.PathKey{Instance: "ins-x", DstSite: 3}); !ok || len(path.Hops) != 3 {
		t.Fatalf("site-3 path = %v, %v", path, ok)
	}

	// The record disappears entirely (all flows rejected): everything goes.
	store.Delete(ConfigKey("ins-x"))
	store.Publish(3)
	if _, err := agent.Poll(); err != nil {
		t.Fatal(err)
	}
	if host.PathMap.Len() != 0 {
		t.Fatalf("paths = %d, want 0 after record removal", host.PathMap.Len())
	}
}
