package controlplane

import (
	"strings"
	"testing"

	"megate/internal/core"
	"megate/internal/kvstore"
	"megate/internal/topology"
	"megate/internal/traffic"
)

// TestDeltaUnchangedMatrixWritesZero covers the acceptance criterion: a
// second interval over the identical matrix publishes only a version bump —
// zero per-instance records written.
func TestDeltaUnchangedMatrixWritesZero(t *testing.T) {
	topo := topology.BuildB4()
	topology.AttachEndpointsExact(topo, 3)
	m := traffic.Generate(topo, traffic.GenOptions{Seed: 1, MeanDemandMbps: 20})
	solver := core.NewSolver(topo, core.Options{Incremental: true})
	store := kvstore.NewStore(2)
	ctrl := NewController(solver, StoreAdapter{Store: store})

	_, n1, err := ctrl.RunInterval(m)
	if err != nil {
		t.Fatal(err)
	}
	if n1 == 0 {
		t.Fatal("first interval wrote no configs")
	}

	res2, n2, err := ctrl.RunInterval(m)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != 0 {
		t.Errorf("unchanged matrix wrote %d configs, want 0", n2)
	}
	st := ctrl.LastStats()
	if st.Written != 0 || st.Deleted != 0 || st.Unchanged != n1 {
		t.Errorf("stats = %+v, want 0 written, 0 deleted, %d unchanged", st, n1)
	}
	if store.Version() != 2 || ctrl.Version() != 2 {
		t.Errorf("version = %d / %d, want 2 (publish still happens)", store.Version(), ctrl.Version())
	}
	if res2.Stage2CacheHits == 0 {
		t.Error("incremental solver reported no stage-2 cache hits on an unchanged matrix")
	}

	// Agents still converge on the bumped version.
	agent := &Agent{Instance: topo.Endpoints[0].Instance, Reader: StoreAdapter{Store: store}}
	if _, err := agent.Poll(); err != nil {
		t.Fatal(err)
	}
	if agent.LastVersion() != 2 {
		t.Errorf("agent at version %d, want 2", agent.LastVersion())
	}
}

// TestDeltaTombstonesDisappearedInstances: when every pinned path of an
// instance disappears from the TE result, its record is deleted from the
// database rather than left stale.
func TestDeltaTombstonesDisappearedInstances(t *testing.T) {
	topo := topology.BuildB4()
	topology.AttachEndpointsExact(topo, 3)
	m := traffic.Generate(topo, traffic.GenOptions{Seed: 2, MeanDemandMbps: 20})
	store := kvstore.NewStore(2)
	ctrl := NewController(core.NewSolver(topo, core.Options{Incremental: true}), StoreAdapter{Store: store})
	if _, _, err := ctrl.RunInterval(m); err != nil {
		t.Fatal(err)
	}
	keys := store.Keys("te/cfg/")
	if len(keys) == 0 {
		t.Fatal("no configs written")
	}
	victim := strings.TrimPrefix(keys[0], "te/cfg/")

	// Drop every flow sourced at the victim instance and re-run.
	var flows []traffic.Flow
	for _, f := range m.Flows {
		if topo.Endpoints[f.Src].Instance != victim {
			flows = append(flows, f)
		}
	}
	if len(flows) == len(m.Flows) {
		t.Fatalf("victim %s sources no flows", victim)
	}
	if _, _, err := ctrl.RunInterval(traffic.NewMatrix(flows)); err != nil {
		t.Fatal(err)
	}
	if _, ok := store.Get(ConfigKey(victim)); ok {
		t.Errorf("record for %s survived although all its paths disappeared", victim)
	}
	if st := ctrl.LastStats(); st.Deleted == 0 {
		t.Errorf("stats = %+v, want at least one deletion", st)
	}
}
