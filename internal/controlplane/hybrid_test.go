package controlplane

import (
	"math"
	"net"
	"testing"
	"time"

	"megate/internal/core"
	"megate/internal/hoststack"
	"megate/internal/kvstore"
	"megate/internal/packet"
	"megate/internal/topology"
)

func TestPlanHybridCoversHeavyHitters(t *testing.T) {
	// 90% of traffic from 2 of 6 instances.
	volumes := map[string]float64{
		"big-1": 500, "big-2": 400,
		"small-1": 30, "small-2": 30, "small-3": 20, "small-4": 20,
	}
	plan := PlanHybrid(volumes, 0.8)
	if len(plan.Persistent) != 2 {
		t.Fatalf("persistent = %v", plan.Persistent)
	}
	if plan.Persistent[0] != "big-1" || plan.Persistent[1] != "big-2" {
		t.Errorf("persistent order = %v", plan.Persistent)
	}
	if len(plan.Polling) != 4 {
		t.Errorf("polling = %v", plan.Polling)
	}
	if plan.PersistentShare < 0.8 || plan.PersistentShare > 1 {
		t.Errorf("share = %v", plan.PersistentShare)
	}
}

func TestPlanHybridEdges(t *testing.T) {
	plan := PlanHybrid(map[string]float64{"a": 1}, 0)
	if len(plan.Persistent) != 0 || len(plan.Polling) != 1 {
		t.Error("coverShare 0 should poll everything")
	}
	plan = PlanHybrid(map[string]float64{"a": 1, "b": 1}, 1)
	if len(plan.Persistent) != 2 {
		t.Error("coverShare 1 should push everything")
	}
	plan = PlanHybrid(nil, 0.5)
	if plan.PersistentShare != 0 {
		t.Error("empty volumes")
	}
}

func TestConvergedShare(t *testing.T) {
	plan := HybridPlan{PersistentShare: 0.8}
	window := 10 * time.Second
	if got := plan.ConvergedShare(0, window); math.Abs(got-0.8) > 1e-9 {
		t.Errorf("t=0: %v, want 0.8 (persistent pushes immediately)", got)
	}
	if got := plan.ConvergedShare(5*time.Second, window); math.Abs(got-0.9) > 1e-9 {
		t.Errorf("t=5s: %v, want 0.9", got)
	}
	if got := plan.ConvergedShare(window, window); got != 1 {
		t.Errorf("t=window: %v, want 1", got)
	}
	if got := plan.ConvergedShare(-time.Second, window); math.Abs(got-0.8) > 1e-9 {
		t.Errorf("t<0: %v", got)
	}
}

func TestHybridCost(t *testing.T) {
	volumes := map[string]float64{}
	for i := 0; i < 1000; i++ {
		v := 1.0
		if i < 10 {
			v = 1000 // 10 heavy hitters carry ~91% of traffic
		}
		volumes[fmtInstance(i)] = v
	}
	plan := PlanHybrid(volumes, 0.9)
	if len(plan.Persistent) > 20 {
		t.Fatalf("persistent set = %d, want ~10", len(plan.Persistent))
	}
	cost := plan.Cost(PaperTopDownCost, PaperBottomUpCost, 10*time.Second)
	full := PaperTopDownCost.CoresFor(1000)
	if cost.Cores >= full+PaperBottomUpCost.ControllerCores {
		t.Errorf("hybrid cores %v should undercut full top-down %v", cost.Cores, full)
	}
	if cost.DBShards < 1 {
		t.Error("shards")
	}
}

func fmtInstance(i int) string { return "ins-" + string(rune('a'+i%26)) + "-" + itoa(i) }

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestIPPlanRoundTrip(t *testing.T) {
	topo := topology.BuildB4()
	topology.AttachEndpointsExact(topo, 300)
	plan, err := NewIPPlan(topo)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[[4]byte]bool{}
	for _, ep := range topo.Endpoints {
		ip := plan.IPOf(ep.ID)
		if seen[ip] {
			t.Fatalf("duplicate ip %v", ip)
		}
		seen[ip] = true
		got, ok := plan.EndpointOf(ip)
		if !ok || got != ep.ID {
			t.Fatalf("round trip failed for %v", ip)
		}
		site, ok := plan.SiteOf(ip)
		if !ok || topology.SiteID(site) != ep.Site {
			t.Fatalf("site of %v = %d, want %d", ip, site, ep.Site)
		}
	}
	if _, ok := plan.EndpointOf([4]byte{9, 9, 9, 9}); ok {
		t.Error("bogus ip resolved")
	}
	if _, ok := plan.SiteOf([4]byte{10, 200, 0, 0}); ok {
		t.Error("site out of range resolved")
	}
}

func TestIPPlanTooManySites(t *testing.T) {
	topo := topology.New("big")
	for i := 0; i < 257; i++ {
		topo.AddSite("s", 0, 0)
	}
	if _, err := NewIPPlan(topo); err == nil {
		t.Error("want error for > 256 sites")
	}
}

func TestDemandEstimatorClosedLoop(t *testing.T) {
	topo := topology.BuildB4()
	topology.AttachEndpointsExact(topo, 4)
	plan, err := NewIPPlan(topo)
	if err != nil {
		t.Fatal(err)
	}
	est := NewDemandEstimator(plan)
	est.Interval = time.Minute

	src := topo.EndpointsAt(0)[0]
	dst := topo.EndpointsAt(3)[0]
	tuple := packet.FiveTuple{
		SrcIP: plan.IPOf(src), DstIP: plan.IPOf(dst),
		Proto: packet.IPProtoUDP, SrcPort: 1000, DstPort: 2000,
	}
	// 750 MB in a minute = 100 Mbps.
	records := []hoststack.FlowRecord{{Instance: "ins-0-0", Tuple: tuple, Bytes: 750_000_000}}
	if un := est.Observe(records); un != 0 {
		t.Fatalf("unresolved = %d", un)
	}
	m := est.Matrix()
	if m.NumFlows() != 1 {
		t.Fatalf("flows = %d", m.NumFlows())
	}
	if math.Abs(m.Flows[0].DemandMbps-100) > 1 {
		t.Errorf("demand = %v, want ~100", m.Flows[0].DemandMbps)
	}
	if m.Flows[0].Pair.Src != 0 || m.Flows[0].Pair.Dst != 3 {
		t.Errorf("pair = %+v", m.Flows[0].Pair)
	}

	// EWMA: a second interval at 300 Mbps moves the estimate halfway.
	records[0].Bytes = 3 * 750_000_000
	est.Observe(records)
	m = est.Matrix()
	if math.Abs(m.Flows[0].DemandMbps-200) > 2 {
		t.Errorf("EWMA demand = %v, want ~200", m.Flows[0].DemandMbps)
	}
}

func TestDemandEstimatorUnresolvedAndIntraSite(t *testing.T) {
	topo := topology.BuildB4()
	topology.AttachEndpointsExact(topo, 2)
	plan, _ := NewIPPlan(topo)
	est := NewDemandEstimator(plan)

	unknown := packet.FiveTuple{SrcIP: [4]byte{9, 9, 9, 9}, DstIP: plan.IPOf(0)}
	if un := est.Observe([]hoststack.FlowRecord{{Tuple: unknown, Bytes: 1}}); un != 1 {
		t.Errorf("unresolved = %d", un)
	}
	// Intra-site flow: resolvable but excluded from the WAN matrix.
	a, b := topo.EndpointsAt(5)[0], topo.EndpointsAt(5)[1]
	intra := packet.FiveTuple{SrcIP: plan.IPOf(a), DstIP: plan.IPOf(b)}
	est.Observe([]hoststack.FlowRecord{{Tuple: intra, Bytes: 1000}})
	if m := est.Matrix(); m.NumFlows() != 0 {
		t.Errorf("intra-site flow leaked into the WAN matrix: %d flows", m.NumFlows())
	}
}

func TestVolumeByInstance(t *testing.T) {
	records := []hoststack.FlowRecord{
		{Instance: "a", Bytes: 100},
		{Instance: "a", Bytes: 50},
		{Instance: "b", Bytes: 10},
		{Instance: "", Bytes: 99}, // unidentified flows excluded
	}
	got := VolumeByInstance(records)
	if got["a"] != 150 || got["b"] != 10 || len(got) != 2 {
		t.Errorf("volumes = %v", got)
	}
}

// End-to-end measurement loop: host traffic -> records -> estimator ->
// matrix -> solver.
func TestMeasurementLoopEndToEnd(t *testing.T) {
	topo := topology.BuildB4()
	topology.AttachEndpointsExact(topo, 2)
	plan, err := NewIPPlan(topo)
	if err != nil {
		t.Fatal(err)
	}
	host := hoststack.NewHost("h", 1500, plan.SiteOf)
	defer host.Close()

	src := topo.EndpointsAt(0)[0]
	dst := topo.EndpointsAt(7)[0]
	tuple := packet.FiveTuple{
		SrcIP: plan.IPOf(src), DstIP: plan.IPOf(dst),
		Proto: packet.IPProtoUDP, SrcPort: 1111, DstPort: 2222,
	}
	host.RunProcess(1, topo.Endpoints[src].Instance)
	host.OpenConnection(1, tuple)
	for i := 0; i < 10; i++ {
		if _, err := host.Send(tuple, 1, plan.IPOf(src), plan.IPOf(dst), make([]byte, 1000)); err != nil {
			t.Fatal(err)
		}
	}

	est := NewDemandEstimator(plan)
	est.Interval = time.Second
	if un := est.Observe(host.CollectFlows()); un != 0 {
		t.Fatalf("unresolved = %d", un)
	}
	m := est.Matrix()
	if m.NumFlows() != 1 || m.Flows[0].DemandMbps <= 0 {
		t.Fatalf("matrix = %d flows", m.NumFlows())
	}
}

func TestFlowReportRoundTripInProcess(t *testing.T) {
	store := kvstore.NewStore(2)
	adapter := StoreAdapter{Store: store}
	records := []hoststack.FlowRecord{
		{Instance: "ins-a", Tuple: packet.FiveTuple{SrcPort: 1}, Bytes: 100},
		{Instance: "ins-b", Tuple: packet.FiveTuple{SrcPort: 2}, Bytes: 200},
	}
	if err := ReportFlows(adapter, "host-1", records); err != nil {
		t.Fatal(err)
	}
	if err := ReportFlows(adapter, "host-2", records[:1]); err != nil {
		t.Fatal(err)
	}
	reports, err := CollectReports(adapter)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("reports = %d", len(reports))
	}
	all := AllRecords(reports)
	if len(all) != 3 {
		t.Fatalf("records = %d", len(all))
	}
	// Re-reporting overwrites.
	if err := ReportFlows(adapter, "host-1", records[:1]); err != nil {
		t.Fatal(err)
	}
	reports, _ = CollectReports(adapter)
	if len(AllRecords(reports)) != 2 {
		t.Fatal("old report not superseded")
	}
}

func TestFlowReportOverTCP(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	store := kvstore.NewStore(2)
	srv := kvstore.Serve(l, store)
	defer srv.Close()
	adapter := ClientAdapter{Client: &kvstore.Client{Addr: srv.Addr()}}

	records := []hoststack.FlowRecord{{Instance: "ins-x", Bytes: 42}}
	if err := ReportFlows(adapter, "rack-7", records); err != nil {
		t.Fatal(err)
	}
	reports, err := CollectReports(adapter)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 || reports[0].Host != "rack-7" || reports[0].Records[0].Bytes != 42 {
		t.Fatalf("reports = %+v", reports)
	}
}

// The full measured loop over the wire: host measures -> agent reports ->
// controller collects -> estimator -> solve.
func TestMeasuredLoopOverTCP(t *testing.T) {
	topo := topology.BuildB4()
	topology.AttachEndpointsExact(topo, 2)
	plan, err := NewIPPlan(topo)
	if err != nil {
		t.Fatal(err)
	}
	host := hoststack.NewHost("rack-1", 1500, plan.SiteOf)
	defer host.Close()

	src, dst := topo.EndpointsAt(0)[0], topo.EndpointsAt(6)[0]
	tuple := packet.FiveTuple{SrcIP: plan.IPOf(src), DstIP: plan.IPOf(dst), Proto: packet.IPProtoUDP, SrcPort: 7, DstPort: 8}
	host.RunProcess(1, topo.Endpoints[src].Instance)
	host.OpenConnection(1, tuple)
	for i := 0; i < 5; i++ {
		if _, err := host.Send(tuple, 1, plan.IPOf(src), plan.IPOf(dst), make([]byte, 900)); err != nil {
			t.Fatal(err)
		}
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := kvstore.Serve(l, kvstore.NewStore(2))
	defer srv.Close()
	up := ClientAdapter{Client: &kvstore.Client{Addr: srv.Addr()}}
	if err := ReportFlows(up, host.ID, host.CollectFlows()); err != nil {
		t.Fatal(err)
	}

	reports, err := CollectReports(ClientAdapter{Client: &kvstore.Client{Addr: srv.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	est := NewDemandEstimator(plan)
	est.Interval = time.Second
	if un := est.Observe(AllRecords(reports)); un != 0 {
		t.Fatalf("unresolved = %d", un)
	}
	m := est.Matrix()
	if m.NumFlows() != 1 {
		t.Fatalf("flows = %d", m.NumFlows())
	}
	res, err := core.NewSolver(topo, core.Options{}).Solve(m)
	if err != nil {
		t.Fatal(err)
	}
	if res.SatisfiedFraction() < 0.999 {
		t.Errorf("satisfied = %v", res.SatisfiedFraction())
	}
}
