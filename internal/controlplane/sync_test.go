package controlplane

import (
	"errors"
	"testing"
	"time"

	"megate/internal/hoststack"
	"megate/internal/kvstore"
)

// scriptSync is a DeltaSource whose error behavior flips per call, for
// driving the agent's recovery paths without a wire.
type scriptSync struct {
	store    *kvstore.Store
	deltaErr error
	snapErr  error
}

func (s *scriptSync) ReadSnapshot(prefix string) (uint64, map[string][]byte, error) {
	if s.snapErr != nil {
		return 0, nil, s.snapErr
	}
	v, recs := s.store.SnapshotPrefix(prefix)
	return v, recs, nil
}

func (s *scriptSync) ReadDelta(since uint64, prefix string) (uint64, []kvstore.DeltaEntry, error) {
	if s.deltaErr != nil {
		return 0, nil, s.deltaErr
	}
	v, entries, ok := s.store.DeltaSince(since, prefix)
	if !ok {
		return v, nil, kvstore.ErrDeltaGap
	}
	return v, entries, nil
}

func newSyncHost(t *testing.T) *hoststack.Host {
	t.Helper()
	host := hoststack.NewHost("h", 1500, func([4]byte) (uint32, bool) { return 0, false })
	t.Cleanup(host.Close)
	return host
}

// TestAgentSyncColdSnapshotThenDeltas pins the O(1) cold-sync contract: one
// snapshot at boot, then every steady-state poll is a single delta — across
// updates, no-change intervals, and a record deletion.
func TestAgentSyncColdSnapshotThenDeltas(t *testing.T) {
	store := kvstore.NewStore(2)
	store.EnableDeltaLog(32)
	host := newSyncHost(t)
	putConfig(t, store, "ins-x", 1, []PathEntry{{DstSite: 3, Hops: []uint32{0, 3}}})

	agent := &Agent{Instance: "ins-x", Sync: StoreAdapter{Store: store}, Host: host}
	if applied, err := agent.Poll(); err != nil || !applied {
		t.Fatalf("cold poll: applied=%v err=%v", applied, err)
	}
	if snaps, deltas := agent.SyncStats(); snaps != 1 || deltas != 0 {
		t.Fatalf("after cold poll: snapshots=%d deltas=%d, want 1/0", snaps, deltas)
	}
	if agent.LastVersion() != 1 || host.PathMap.Len() != 1 {
		t.Fatalf("cold poll installed version %d, %d paths", agent.LastVersion(), host.PathMap.Len())
	}

	// Unchanged interval: the delta poll advances nothing and stays a delta.
	if applied, err := agent.Poll(); err != nil || applied {
		t.Fatalf("idle poll: applied=%v err=%v", applied, err)
	}

	// An update rides a delta, never a second snapshot.
	putConfig(t, store, "ins-x", 2, []PathEntry{
		{DstSite: 3, Hops: []uint32{0, 1, 3}},
		{DstSite: 5, Hops: []uint32{0, 5}},
	})
	if applied, err := agent.Poll(); err != nil || !applied {
		t.Fatalf("update poll: applied=%v err=%v", applied, err)
	}
	if agent.LastVersion() != 2 || host.PathMap.Len() != 2 {
		t.Fatalf("update poll: version %d, %d paths, want 2/2", agent.LastVersion(), host.PathMap.Len())
	}

	// A tombstone delta removes the pinned paths.
	store.Delete(ConfigKey("ins-x"))
	store.Publish(3)
	if applied, err := agent.Poll(); err != nil || !applied {
		t.Fatalf("tombstone poll: applied=%v err=%v", applied, err)
	}
	if host.PathMap.Len() != 0 {
		t.Fatalf("tombstone left %d paths installed", host.PathMap.Len())
	}
	if snaps, deltas := agent.SyncStats(); snaps != 1 || deltas != 3 {
		t.Errorf("end state: snapshots=%d deltas=%d, want 1/3 (cold sync is O(1))", snaps, deltas)
	}
}

// TestAgentSyncGapFallsBackToSnapshot truncates the journal under a synced
// agent: the next poll's delta answers GAP and the agent resyncs with a
// snapshot inside the same poll, ending consistent.
func TestAgentSyncGapFallsBackToSnapshot(t *testing.T) {
	store := kvstore.NewStore(2)
	store.EnableDeltaLog(1)
	host := newSyncHost(t)
	putConfig(t, store, "ins-x", 1, []PathEntry{{DstSite: 3, Hops: []uint32{0, 3}}})

	agent := &Agent{Instance: "ins-x", Sync: StoreAdapter{Store: store}, Host: host}
	if _, err := agent.Poll(); err != nil {
		t.Fatal(err)
	}

	// Churn on other keys overflows the 1-entry journal, cutting the floor
	// above the agent's cursor.
	for v := uint64(2); v <= 4; v++ {
		store.Put("te/cfg/other", []byte("x"))
		store.Publish(v)
	}
	applied, err := agent.Poll()
	if err != nil {
		t.Fatalf("gap poll must recover in-place, got %v", err)
	}
	if !applied {
		t.Fatal("gap poll applied nothing")
	}
	if agent.LastVersion() != 4 {
		t.Errorf("version after gap resync = %d, want 4", agent.LastVersion())
	}
	if snaps, _ := agent.SyncStats(); snaps != 2 {
		t.Errorf("snapshots = %d, want 2 (boot + gap resync)", snaps)
	}
	if host.PathMap.Len() != 1 {
		t.Errorf("%d paths after resync, want 1", host.PathMap.Len())
	}
}

// TestAgentSyncBusyResetsTTL pins shed ≠ dead at the agent: a BUSY answer is
// proof the database is alive, so it resets the staleness TTL instead of
// advancing it — a fleet weathering overload must not rip out pinned paths.
func TestAgentSyncBusyResetsTTL(t *testing.T) {
	store := kvstore.NewStore(2)
	store.EnableDeltaLog(16)
	host := newSyncHost(t)
	putConfig(t, store, "ins-x", 1, []PathEntry{{DstSite: 3, Hops: []uint32{0, 3}}})

	src := &scriptSync{store: store}
	agent := &Agent{Instance: "ins-x", Sync: src, Host: host, StaleAfter: 2}
	if _, err := agent.Poll(); err != nil {
		t.Fatal(err)
	}

	transport := errors.New("scripted transport failure")
	busy := &kvstore.BusyError{RetryAfter: 10 * time.Millisecond}

	// fail, BUSY, fail: the BUSY in the middle resets the consecutive count,
	// so StaleAfter=2 never fires.
	for i, e := range []error{transport, busy, transport} {
		src.deltaErr = e
		if _, err := agent.Poll(); err == nil {
			t.Fatalf("poll %d should fail", i)
		}
	}
	if agent.Degraded() {
		t.Fatal("TTL fired across a BUSY answer: shed must not count as dead")
	}
	if host.PathMap.Len() != 1 {
		t.Fatalf("paths removed while only shed/briefly failing")
	}
	if got := agent.BusyPolls(); got != 1 {
		t.Errorf("busy polls = %d, want 1", got)
	}

	// Two consecutive transport failures with no BUSY between do degrade.
	src.deltaErr = transport
	if _, err := agent.Poll(); err == nil {
		t.Fatal("poll should fail")
	}
	if !agent.Degraded() {
		t.Fatal("TTL did not fire after StaleAfter consecutive transport failures")
	}
	if host.PathMap.Len() != 0 {
		t.Fatalf("degraded agent left %d paths pinned", host.PathMap.Len())
	}

	// Recovery: the database answers again, the snapshot path reinstalls.
	src.deltaErr = nil
	if applied, err := agent.Poll(); err != nil || !applied {
		t.Fatalf("recovery poll: applied=%v err=%v", applied, err)
	}
	if agent.Degraded() || host.PathMap.Len() != 1 {
		t.Fatalf("recovery left degraded=%v paths=%d", agent.Degraded(), host.PathMap.Len())
	}
}

// TestJitterWaitDispersion is the regression test for post-error poll
// lockstep: agents that fail in the same window must not all compute the same
// retry sleep. The de-correlated schedule keeps every sleep inside its
// contract window while spreading a simulated fleet across it.
func TestJitterWaitDispersion(t *testing.T) {
	const fleet = 256
	wait := 500 * time.Millisecond
	transport := errors.New("partitioned")
	busy := &kvstore.BusyError{RetryAfter: 40 * time.Millisecond}

	distinct := func(err error, lo, hi time.Duration) int {
		t.Helper()
		seen := make(map[time.Duration]bool)
		for slot := 0; slot < fleet; slot++ {
			a := &Agent{Slot: slot, SlotCount: fleet}
			d := a.jitterWait(wait, err)
			if d < lo || d > hi {
				t.Fatalf("slot %d: sleep %v outside [%v, %v]", slot, d, lo, hi)
			}
			seen[d] = true
		}
		return len(seen)
	}

	// Transport failures sleep half-jittered in [wait/2, wait].
	if n := distinct(transport, wait/2, wait); n < fleet/8 {
		t.Errorf("transport retry produced %d distinct sleeps across %d agents: lockstep herd", n, fleet)
	}
	// BUSY honors the server hint: never sooner, at most half again later.
	if n := distinct(busy, 40*time.Millisecond, 60*time.Millisecond); n < fleet/8 {
		t.Errorf("busy retry produced %d distinct sleeps across %d agents: lockstep herd", n, fleet)
	}

	// Clean polls and application-level errors keep the exact interval — the
	// Slot spread already disperses the steady state.
	a := &Agent{Slot: 1, SlotCount: fleet}
	if d := a.jitterWait(wait, nil); d != wait {
		t.Errorf("clean poll sleep = %v, want exactly %v", d, wait)
	}
	if d := a.jitterWait(wait, ErrBadRecord); d != wait {
		t.Errorf("bad-record sleep = %v, want exactly %v", d, wait)
	}

	// The stream is seeded per slot: the same agent replays the same jitter.
	x := &Agent{Slot: 7, SlotCount: fleet}
	y := &Agent{Slot: 7, SlotCount: fleet}
	if dx, dy := x.jitterWait(wait, transport), y.jitterWait(wait, transport); dx != dy {
		t.Errorf("same slot replayed different jitter: %v vs %v", dx, dy)
	}
}
