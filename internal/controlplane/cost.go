package controlplane

import (
	"context"
	"fmt"
	"math"
	"net"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Measurement is one pressure-test sample (Figure 13): the resource cost of
// holding n persistent heartbeat connections.
type Measurement struct {
	Connections int
	// HeapBytes is the live-heap growth attributable to the connections.
	HeapBytes uint64
	// Goroutines is the goroutine count growth (two per connection: server
	// handler and endpoint loop).
	Goroutines int
	// CPUSeconds is process CPU consumed during the sample window.
	CPUSeconds float64
	// Window is the sampling duration.
	Window time.Duration
}

// CPUPercentOfCore returns CPU usage as a percentage of one core.
func (m Measurement) CPUPercentOfCore() float64 {
	if m.Window <= 0 {
		return 0
	}
	return m.CPUSeconds / m.Window.Seconds() * 100
}

// PressureTest measures the cost of n persistent heartbeat connections on
// the loopback for the given window — the experiment behind Figure 13. The
// endpoints and the server run in this process, so the measured cost covers
// both sides; the paper's VM test measures the controller side only, making
// this measurement an upper bound with the same linear shape.
func PressureTest(n int, heartbeat, window time.Duration) (Measurement, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return Measurement{}, err
	}
	srv := ServeTopDown(l)
	defer srv.Close()

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	goroutinesBefore := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		ep := &TopDownEndpoint{ID: fmt.Sprintf("ep-%d", i)}
		go func() {
			defer wg.Done()
			_ = ep.Run(ctx, srv.Addr(), heartbeat)
		}()
	}

	// Wait for all connections to establish (bounded).
	deadline := time.Now().Add(10 * time.Second)
	for srv.Connections() < n && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}

	cpuBefore, _ := processCPUSeconds()
	start := time.Now()
	time.Sleep(window)
	cpuAfter, cpuErr := processCPUSeconds()

	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	m := Measurement{
		Connections: srv.Connections(),
		Goroutines:  runtime.NumGoroutine() - goroutinesBefore,
		Window:      time.Since(start),
	}
	if after.HeapInuse > before.HeapInuse {
		m.HeapBytes = after.HeapInuse - before.HeapInuse
	}
	if cpuErr == nil {
		m.CPUSeconds = cpuAfter - cpuBefore
	}

	cancel()
	wg.Wait()
	return m, nil
}

// processCPUSeconds reads the process's cumulative user+system CPU time
// from /proc/self/stat (Linux).
func processCPUSeconds() (float64, error) {
	data, err := os.ReadFile("/proc/self/stat")
	if err != nil {
		return 0, err
	}
	// Field 2 (comm) may contain spaces; skip past the closing paren.
	s := string(data)
	i := strings.LastIndexByte(s, ')')
	if i < 0 {
		return 0, fmt.Errorf("controlplane: malformed /proc/self/stat")
	}
	fields := strings.Fields(s[i+1:])
	// After comm and state, utime is field index 11 and stime 12 within
	// this remainder (stat fields 14 and 15 overall).
	if len(fields) < 13 {
		return 0, fmt.Errorf("controlplane: short /proc/self/stat")
	}
	utime, err1 := strconv.ParseFloat(fields[11], 64)
	stime, err2 := strconv.ParseFloat(fields[12], 64)
	if err1 != nil || err2 != nil {
		return 0, fmt.Errorf("controlplane: bad utime/stime")
	}
	const hz = 100 // USER_HZ
	return (utime + stime) / hz, nil
}

// TopDownCost extrapolates controller resources for the top-down loop
// (Figure 14): both CPU and memory grow linearly with connection count.
type TopDownCost struct {
	CoresPerConnection float64
	BytesPerConnection float64
}

// PaperTopDownCost is anchored to the paper's reported figures: one million
// endpoints need at least 167 CPU cores and 125 GB of memory.
var PaperTopDownCost = TopDownCost{
	CoresPerConnection: 167.0 / 1e6,
	BytesPerConnection: 125e9 / 1e6,
}

// Calibrate derives a cost model from a pressure-test measurement.
func Calibrate(m Measurement) TopDownCost {
	if m.Connections == 0 {
		return TopDownCost{}
	}
	return TopDownCost{
		CoresPerConnection: m.CPUSeconds / m.Window.Seconds() / float64(m.Connections),
		BytesPerConnection: float64(m.HeapBytes) / float64(m.Connections),
	}
}

// CoresFor returns the CPU cores needed for n endpoints.
func (c TopDownCost) CoresFor(n int) float64 {
	return c.CoresPerConnection * float64(n)
}

// MemBytesFor returns the memory needed for n endpoints.
func (c TopDownCost) MemBytesFor(n int) float64 {
	return c.BytesPerConnection * float64(n)
}

// BottomUpCost models the bottom-up loop's resources (Figure 14's flat
// line): the controller writes configs and publishes a version with
// constant resources, while the TE database scales shards with the peak
// query rate.
type BottomUpCost struct {
	// ControllerCores and ControllerBytes are constant per the paper: one
	// core and 1 GB regardless of endpoint count.
	ControllerCores float64
	ControllerBytes float64
	// QPSPerShard is each database shard's query capacity; the paper's
	// deployment achieves 160k QPS with two shards.
	QPSPerShard float64
}

// PaperBottomUpCost uses the paper's production numbers.
var PaperBottomUpCost = BottomUpCost{
	ControllerCores: 1,
	ControllerBytes: 1e9,
	QPSPerShard:     80000,
}

// PeakQPS returns the database query rate when n endpoints spread their
// polls uniformly over the window (each poll is one version query).
func PeakQPS(n int, window time.Duration) float64 {
	if window <= 0 {
		return math.Inf(1)
	}
	return float64(n) / window.Seconds()
}

// ShardsFor returns the database shards needed for n endpoints polling
// over the given spread window.
func (c BottomUpCost) ShardsFor(n int, window time.Duration) int {
	if c.QPSPerShard <= 0 {
		return 1
	}
	shards := int(math.Ceil(PeakQPS(n, window) / c.QPSPerShard))
	if shards < 1 {
		shards = 1
	}
	return shards
}
