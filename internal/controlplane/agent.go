package controlplane

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"megate/internal/hoststack"
)

// ConfigReader is the agent's read interface to the TE database; both
// *kvstore.Store (in-process) and *kvstore.Client satisfy it through the
// adapters below.
type ConfigReader interface {
	ReadVersion() (uint64, error)
	ReadConfig(key string) ([]byte, bool, error)
}

// ReadVersion implements ConfigReader for StoreAdapter.
func (a StoreAdapter) ReadVersion() (uint64, error) { return a.Store.Version(), nil }

// ReadConfig implements ConfigReader for StoreAdapter.
func (a StoreAdapter) ReadConfig(key string) ([]byte, bool, error) {
	v, ok := a.Store.Get(key)
	return v, ok, nil
}

// ReadVersion implements ConfigReader for ClientAdapter.
func (a ClientAdapter) ReadVersion() (uint64, error) { return a.Client.Version() }

// ReadConfig implements ConfigReader for ClientAdapter.
func (a ClientAdapter) ReadConfig(key string) ([]byte, bool, error) {
	return a.Client.Get(key)
}

// Agent is the endpoint agent of §3.2 and Figure 6: it polls the TE
// database for the configuration version and, when it moves, pulls the
// instance's record and installs the SR paths into the host's path_map.
type Agent struct {
	Instance string
	Reader   ConfigReader
	// Host receives InstallPath calls; nil is allowed for agents used only
	// to measure the synchronization protocol.
	Host *hoststack.Host

	// Slot and SlotCount spread agents' polls across the poll window so
	// the database sees a flat query rate ("each part initiates queries
	// asynchronously during a specific time period", §3.2).
	Slot, SlotCount int

	// StaleAfter is the staleness TTL in consecutive failed polls: once the
	// agent cannot reach the database for StaleAfter polls in a row, it
	// uninstalls its pinned SR paths so the instance falls back to
	// conventional routing (§6.3's failure reaction — stale pinned paths may
	// point through links the unreachable controller already routed around).
	// Paths are reinstalled on the first successful poll after recovery.
	// Zero disables the TTL.
	StaleAfter int
	// MaxBackoff caps the poll interval growth of Run while the database is
	// unreachable; zero means 8x the base interval.
	MaxBackoff time.Duration

	lastVersion uint64
	polls       uint64
	updates     uint64
	errors      uint64
	// consecFails counts consecutive polls that failed at the transport
	// level; degraded records that the TTL fired and paths are uninstalled.
	consecFails int
	degraded    bool
	fallbacks   uint64
	recoveries  uint64
	// installed tracks the destinations currently in the host's path_map
	// so stale entries are removed when a new configuration drops them.
	installed map[uint32]bool
}

// SpreadDelay returns when within a window of the given length this agent
// should poll.
func (a *Agent) SpreadDelay(window time.Duration) time.Duration {
	if a.SlotCount <= 1 {
		return 0
	}
	return window * time.Duration(a.Slot) / time.Duration(a.SlotCount)
}

// LastVersion returns the configuration version the agent has applied.
func (a *Agent) LastVersion() uint64 { return a.lastVersion }

// Stats returns how many polls the agent issued and how many brought a new
// configuration.
func (a *Agent) Stats() (polls, updates uint64) { return a.polls, a.updates }

// Errors returns how many polls failed (unreachable database, bad record).
func (a *Agent) Errors() uint64 { return a.errors }

// Degraded reports whether the staleness TTL has fired: the agent removed
// its pinned paths and the instance is on conventional routing.
func (a *Agent) Degraded() bool { return a.degraded }

// FallbackStats returns how many times the staleness TTL uninstalled the
// pinned paths and how many times a later successful poll reinstated them.
func (a *Agent) FallbackStats() (fallbacks, recoveries uint64) {
	return a.fallbacks, a.recoveries
}

// noteUnreachable records a transport-level poll failure and fires the
// staleness TTL once StaleAfter consecutive failures accumulate.
func (a *Agent) noteUnreachable() {
	a.consecFails++
	if a.StaleAfter <= 0 || a.consecFails < a.StaleAfter || a.degraded {
		return
	}
	a.degraded = true
	a.fallbacks++
	if a.Host != nil {
		for dst := range a.installed {
			a.Host.RemovePath(a.Instance, dst)
		}
	}
	a.installed = nil
}

// Poll performs one version check, pulling and installing the instance's
// configuration when the version advanced. It reports whether new
// configuration was applied.
func (a *Agent) Poll() (bool, error) {
	a.polls++
	v, err := a.Reader.ReadVersion()
	if err != nil {
		a.errors++
		a.noteUnreachable()
		return false, err
	}
	// While degraded the agent must re-pull even at an unchanged version:
	// the TTL dropped its paths, so "consistent with v" no longer means
	// "installed".
	recovering := a.degraded
	if v == a.lastVersion && !recovering {
		a.consecFails = 0
		return false, nil
	}
	data, ok, err := a.Reader.ReadConfig(ConfigKey(a.Instance))
	if err != nil {
		a.errors++
		a.noteUnreachable()
		return false, err
	}
	a.consecFails = 0
	if ok {
		var cfg InstanceConfig
		if err := json.Unmarshal(data, &cfg); err != nil {
			// A corrupt record is a failed poll — count it — but the database
			// was reachable, so it does not advance the staleness TTL, and
			// the previously installed (still-valid) paths stay in place.
			a.errors++
			return false, fmt.Errorf("controlplane: agent %s: bad config: %w", a.Instance, err)
		}
		a.apply(&cfg)
	} else if a.Host != nil {
		// No record under the new version: this instance's flows were all
		// rejected or it has no traffic; stale pinned paths must go.
		for dst := range a.installed {
			a.Host.RemovePath(a.Instance, dst)
		}
		a.installed = nil
	}
	if recovering {
		a.degraded = false
		a.recoveries++
	}
	// Even when this instance has no record (all its flows were rejected
	// or it has no traffic), the agent is now consistent with version v.
	a.lastVersion = v
	a.updates++
	return true, nil
}

// apply installs the configuration's paths and removes entries the new
// configuration no longer carries.
func (a *Agent) apply(cfg *InstanceConfig) {
	if a.Host == nil {
		return
	}
	next := make(map[uint32]bool, len(cfg.Paths))
	for _, p := range cfg.Paths {
		a.Host.InstallPath(a.Instance, p.DstSite, p.Hops)
		next[p.DstSite] = true
	}
	for dst := range a.installed {
		if !next[dst] {
			a.Host.RemovePath(a.Instance, dst)
		}
	}
	a.installed = next
}

// Run polls on the interval, offset by the agent's spread slot, until the
// context ends. Poll errors are counted but do not stop the loop (the
// database may be briefly unreachable; eventual consistency tolerates it);
// consecutive failures double the wait up to MaxBackoff so a fleet facing a
// dead database does not keep hammering it at full rate.
func (a *Agent) Run(ctx context.Context, interval time.Duration) error {
	select {
	case <-time.After(a.SpreadDelay(interval)):
	case <-ctx.Done():
		return ctx.Err()
	}
	maxWait := a.MaxBackoff
	if maxWait <= 0 {
		maxWait = 8 * interval
	}
	wait := interval
	for {
		_, err := a.Poll()
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if err != nil {
			if wait *= 2; wait > maxWait {
				wait = maxWait
			}
		} else {
			wait = interval
		}
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}
