package controlplane

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"megate/internal/hoststack"
	"megate/internal/kvstore"
	"megate/internal/telemetry"
)

// ErrBadRecord reports a poll that reached the database but found a corrupt
// record. It is an application error, not a transport one: Run keeps polling
// at the base interval instead of backing off, because the database is up
// and the next interval's write may already have replaced the record.
var ErrBadRecord = errors.New("bad config")

// ConfigReader is the agent's read interface to the TE database; both
// *kvstore.Store (in-process) and *kvstore.Client satisfy it through the
// adapters below.
type ConfigReader interface {
	ReadVersion() (uint64, error)
	ReadConfig(key string) ([]byte, bool, error)
}

// ReadVersion implements ConfigReader for StoreAdapter.
func (a StoreAdapter) ReadVersion() (uint64, error) { return a.Store.Version(), nil }

// ReadConfig implements ConfigReader for StoreAdapter.
func (a StoreAdapter) ReadConfig(key string) ([]byte, bool, error) {
	v, ok := a.Store.Get(key)
	return v, ok, nil
}

// ReadVersion implements ConfigReader for ClientAdapter.
func (a ClientAdapter) ReadVersion() (uint64, error) { return a.Client.Version() }

// ReadConfig implements ConfigReader for ClientAdapter.
func (a ClientAdapter) ReadConfig(key string) ([]byte, bool, error) {
	return a.Client.Get(key)
}

// DeltaSource is the agent's snapshot+delta read interface to the TE
// database: one request brings either the full state under the agent's
// prefix (ReadSnapshot — cold boot, TTL recovery) or just what changed since
// the last-seen version (ReadDelta — the steady-state poll). ReadDelta
// reports kvstore.ErrDeltaGap when the server's journal no longer reaches
// back that far; the agent then falls back to ReadSnapshot.
type DeltaSource interface {
	ReadSnapshot(prefix string) (uint64, map[string][]byte, error)
	ReadDelta(since uint64, prefix string) (uint64, []kvstore.DeltaEntry, error)
}

// ReadSnapshot implements DeltaSource for StoreAdapter.
func (a StoreAdapter) ReadSnapshot(prefix string) (uint64, map[string][]byte, error) {
	v, recs := a.Store.SnapshotPrefix(prefix)
	return v, recs, nil
}

// ReadDelta implements DeltaSource for StoreAdapter.
func (a StoreAdapter) ReadDelta(since uint64, prefix string) (uint64, []kvstore.DeltaEntry, error) {
	v, entries, ok := a.Store.DeltaSince(since, prefix)
	if !ok {
		return v, nil, kvstore.ErrDeltaGap
	}
	return v, entries, nil
}

// ReadSnapshot implements DeltaSource for ClientAdapter.
func (a ClientAdapter) ReadSnapshot(prefix string) (uint64, map[string][]byte, error) {
	return a.Client.Snapshot(prefix)
}

// ReadDelta implements DeltaSource for ClientAdapter.
func (a ClientAdapter) ReadDelta(since uint64, prefix string) (uint64, []kvstore.DeltaEntry, error) {
	return a.Client.Delta(since, prefix)
}

// Agent is the endpoint agent of §3.2 and Figure 6: it polls the TE
// database for the configuration version and, when it moves, pulls the
// instance's record and installs the SR paths into the host's path_map.
type Agent struct {
	Instance string
	Reader   ConfigReader
	// Sync, when set, switches Poll to the snapshot+delta protocol: a cold
	// or recovering agent pulls its whole state in one ReadSnapshot instead
	// of a version poll plus GET-per-record, and steady-state polls become
	// single-round-trip ReadDelta calls keyed by the last-seen version. A
	// kvstore.ErrDeltaGap answer (journal truncated) falls back to the
	// snapshot within the same poll. Reader may be nil when Sync is set.
	Sync DeltaSource
	// Host receives InstallPath calls; nil is allowed for agents used only
	// to measure the synchronization protocol.
	Host *hoststack.Host

	// Slot and SlotCount spread agents' polls across the poll window so
	// the database sees a flat query rate ("each part initiates queries
	// asynchronously during a specific time period", §3.2).
	Slot, SlotCount int

	// StaleAfter is the staleness TTL in consecutive failed polls: once the
	// agent cannot reach the database for StaleAfter polls in a row, it
	// uninstalls its pinned SR paths so the instance falls back to
	// conventional routing (§6.3's failure reaction — stale pinned paths may
	// point through links the unreachable controller already routed around).
	// Paths are reinstalled on the first successful poll after recovery.
	// Zero disables the TTL.
	StaleAfter int
	// MaxBackoff caps the poll interval growth of Run while the database is
	// unreachable; zero means 8x the base interval.
	MaxBackoff time.Duration
	// Metrics routes the fleet-level agent counters (polls, updates, errors,
	// TTL fallbacks); nil uses telemetry.Default. Per-agent counts stay
	// available through the accessors regardless.
	Metrics *telemetry.Registry

	mOnce sync.Once
	m     *agentMetrics

	// The counters below are telemetry atomics: Run's goroutine increments
	// them while Stats/Errors/Degraded/FallbackStats read concurrently, so
	// plain fields here would be a data race.
	lastVersion atomic.Uint64
	polls       telemetry.Counter
	updates     telemetry.Counter
	emptyAcks   telemetry.Counter
	errs        telemetry.Counter
	degraded    atomic.Bool
	fallbacks   telemetry.Counter
	recoveries  telemetry.Counter
	snapshots   telemetry.Counter
	deltaPolls  telemetry.Counter
	busyPolls   telemetry.Counter
	// consecFails counts consecutive polls that failed at the transport
	// level. It is only touched by the polling goroutine and has no
	// accessor, so it needs no synchronization.
	consecFails int
	// installed tracks the destinations currently in the host's path_map
	// so stale entries are removed when a new configuration drops them.
	// Only the polling goroutine touches it.
	installed map[uint32]bool
	// synced reports whether the snapshot+delta path has a baseline to delta
	// from; false forces the next poll onto the snapshot path. Only the
	// polling goroutine touches it.
	synced bool
	// rng seeds the de-correlated retry jitter; lazily created from Slot by
	// the polling goroutine.
	rng *rand.Rand
}

// metrics lazily binds the fleet-level registry series.
func (a *Agent) metrics() *agentMetrics {
	a.mOnce.Do(func() {
		reg := a.Metrics
		if reg == nil {
			reg = telemetry.Default
		}
		a.m = newAgentMetrics(reg)
	})
	return a.m
}

// SpreadDelay returns when within a window of the given length this agent
// should poll.
func (a *Agent) SpreadDelay(window time.Duration) time.Duration {
	if a.SlotCount <= 1 {
		return 0
	}
	return window * time.Duration(a.Slot) / time.Duration(a.SlotCount)
}

// LastVersion returns the configuration version the agent has applied.
func (a *Agent) LastVersion() uint64 { return a.lastVersion.Load() }

// Stats returns how many polls the agent issued and how many brought a new
// configuration record that was applied.
func (a *Agent) Stats() (polls, updates uint64) { return a.polls.Value(), a.updates.Value() }

// EmptyAcks returns how many polls consumed a version advance that carried
// no record for this instance (all its flows rejected, or no traffic).
func (a *Agent) EmptyAcks() uint64 { return a.emptyAcks.Value() }

// Errors returns how many polls failed (unreachable database, bad record).
func (a *Agent) Errors() uint64 { return a.errs.Value() }

// Degraded reports whether the staleness TTL has fired: the agent removed
// its pinned paths and the instance is on conventional routing.
func (a *Agent) Degraded() bool { return a.degraded.Load() }

// FallbackStats returns how many times the staleness TTL uninstalled the
// pinned paths and how many times a later successful poll reinstated them.
func (a *Agent) FallbackStats() (fallbacks, recoveries uint64) {
	return a.fallbacks.Value(), a.recoveries.Value()
}

// SyncStats returns how many full snapshots and how many incremental delta
// polls the snapshot+delta path issued. A healthy agent shows snapshots
// staying O(1) — one per cold boot or journal gap — while deltas grow with
// uptime.
func (a *Agent) SyncStats() (snapshots, deltas uint64) {
	return a.snapshots.Value(), a.deltaPolls.Value()
}

// BusyPolls returns how many polls the database shed with BUSY.
func (a *Agent) BusyPolls() uint64 { return a.busyPolls.Value() }

// noteFailure records a failed poll's effect on the staleness TTL. A BUSY
// response is proof the database is alive — admission control answered — so
// it resets the consecutive-failure count instead of advancing it: shed ≠
// dead, and a fleet weathering overload must not rip out its pinned paths.
func (a *Agent) noteFailure(err error) {
	if errors.Is(err, kvstore.ErrBusy) {
		a.consecFails = 0
		a.busyPolls.Inc()
		a.metrics().busy.Inc()
		return
	}
	a.noteUnreachable()
}

// noteUnreachable records a transport-level poll failure and fires the
// staleness TTL once StaleAfter consecutive failures accumulate.
func (a *Agent) noteUnreachable() {
	a.consecFails++
	if a.StaleAfter <= 0 || a.consecFails < a.StaleAfter || a.degraded.Load() {
		return
	}
	a.degraded.Store(true)
	a.fallbacks.Inc()
	m := a.metrics()
	m.fallbacks.Inc()
	m.degraded.Add(1)
	a.removeInstalled()
}

// removeInstalled clears every pinned path from the host.
func (a *Agent) removeInstalled() {
	if a.Host != nil {
		for dst := range a.installed {
			a.Host.RemovePath(a.Instance, dst)
		}
	}
	a.installed = nil
}

// Poll performs one version check, pulling and installing the instance's
// configuration when the version advanced. It reports whether new
// configuration was applied. With Sync set it runs the snapshot+delta
// protocol instead of the version+GET pair.
func (a *Agent) Poll() (bool, error) {
	if a.Sync != nil {
		return a.pollSync()
	}
	m := a.metrics()
	a.polls.Inc()
	m.polls.Inc()
	v, err := a.Reader.ReadVersion()
	if err != nil {
		a.errs.Inc()
		m.errs.Inc()
		a.noteFailure(err)
		return false, err
	}
	// While degraded the agent must re-pull even at an unchanged version:
	// the TTL dropped its paths, so "consistent with v" no longer means
	// "installed".
	recovering := a.degraded.Load()
	if v == a.lastVersion.Load() && !recovering {
		a.consecFails = 0
		return false, nil
	}
	data, ok, err := a.Reader.ReadConfig(ConfigKey(a.Instance))
	if err != nil {
		a.errs.Inc()
		m.errs.Inc()
		a.noteFailure(err)
		return false, err
	}
	a.consecFails = 0
	if ok {
		var cfg InstanceConfig
		if err := json.Unmarshal(data, &cfg); err != nil {
			// A corrupt record is a failed poll — count it — but the database
			// was reachable, so it does not advance the staleness TTL, and
			// the previously installed (still-valid) paths stay in place.
			a.errs.Inc()
			m.errs.Inc()
			return false, fmt.Errorf("controlplane: agent %s: %w: %v", a.Instance, ErrBadRecord, err)
		}
		a.apply(&cfg)
		a.updates.Inc()
		m.updates.Inc()
	} else {
		// No record under the new version: this instance's flows were all
		// rejected or it has no traffic; stale pinned paths must go. The
		// version advance is consumed, but nothing was installed: an empty
		// ack, not an update.
		a.removeInstalled()
		a.emptyAcks.Inc()
		m.emptyAcks.Inc()
	}
	if recovering {
		a.degraded.Store(false)
		a.recoveries.Inc()
		m.recoveries.Inc()
		m.degraded.Add(-1)
	}
	// Even when this instance has no record (all its flows were rejected
	// or it has no traffic), the agent is now consistent with version v.
	a.lastVersion.Store(v)
	return true, nil
}

// pollSync is Poll on the snapshot+delta protocol: a synced, healthy agent
// issues one ReadDelta keyed by its last-seen version (one round-trip doing
// the work of the version poll plus the config pull); a cold, recovering, or
// gap-hit agent issues one ReadSnapshot covering its whole prefix.
func (a *Agent) pollSync() (bool, error) {
	m := a.metrics()
	a.polls.Inc()
	m.polls.Inc()
	key := ConfigKey(a.Instance)
	recovering := a.degraded.Load()
	if a.synced && !recovering {
		since := a.lastVersion.Load()
		v, entries, err := a.Sync.ReadDelta(since, key)
		switch {
		case err == nil:
			a.consecFails = 0
			a.deltaPolls.Inc()
			m.deltaPolls.Inc()
			if v <= since {
				return false, nil
			}
			return a.applyDelta(v, entries, m)
		case errors.Is(err, kvstore.ErrDeltaGap):
			// The journal no longer reaches back to our cursor; resync with
			// a snapshot below, inside the same poll.
			m.deltaGaps.Inc()
		default:
			a.errs.Inc()
			m.errs.Inc()
			a.noteFailure(err)
			return false, err
		}
	}
	v, records, err := a.Sync.ReadSnapshot(key)
	if err != nil {
		a.errs.Inc()
		m.errs.Inc()
		a.noteFailure(err)
		return false, err
	}
	a.consecFails = 0
	a.snapshots.Inc()
	m.snapshots.Inc()
	if data, ok := records[key]; ok {
		var cfg InstanceConfig
		if err := json.Unmarshal(data, &cfg); err != nil {
			// Same posture as Poll's corrupt record: count it, leave the TTL
			// and the installed paths alone, and stay unsynced so the next
			// poll snapshots again.
			a.errs.Inc()
			m.errs.Inc()
			return false, fmt.Errorf("controlplane: agent %s: %w: %v", a.Instance, ErrBadRecord, err)
		}
		a.apply(&cfg)
		a.updates.Inc()
		m.updates.Inc()
	} else {
		a.removeInstalled()
		a.emptyAcks.Inc()
		m.emptyAcks.Inc()
	}
	if recovering {
		a.degraded.Store(false)
		a.recoveries.Inc()
		m.recoveries.Inc()
		m.degraded.Add(-1)
	}
	a.synced = true
	a.lastVersion.Store(v)
	return true, nil
}

// applyDelta folds a delta answer covering (since, v] into the host. The
// prefix is exactly the agent's config key, so at most one compacted entry
// applies: a PUT carries the new record, a DEL means the instance lost its
// record (stale paths must go), and no entry at all means the version
// advanced without touching this instance — an empty ack that only moves the
// cursor.
func (a *Agent) applyDelta(v uint64, entries []kvstore.DeltaEntry, m *agentMetrics) (bool, error) {
	key := ConfigKey(a.Instance)
	var rec *kvstore.DeltaEntry
	for i := range entries {
		if entries[i].Key == key {
			rec = &entries[i]
			break
		}
	}
	switch {
	case rec != nil && !rec.Delete:
		var cfg InstanceConfig
		if err := json.Unmarshal(rec.Value, &cfg); err != nil {
			a.errs.Inc()
			m.errs.Inc()
			return false, fmt.Errorf("controlplane: agent %s: %w: %v", a.Instance, ErrBadRecord, err)
		}
		a.apply(&cfg)
		a.updates.Inc()
		m.updates.Inc()
	case rec != nil && rec.Delete:
		a.removeInstalled()
		a.emptyAcks.Inc()
		m.emptyAcks.Inc()
	default:
		a.emptyAcks.Inc()
		m.emptyAcks.Inc()
	}
	a.lastVersion.Store(v)
	return true, nil
}

// apply installs the configuration's paths and removes entries the new
// configuration no longer carries.
func (a *Agent) apply(cfg *InstanceConfig) {
	if a.Host == nil {
		return
	}
	next := make(map[uint32]bool, len(cfg.Paths))
	for _, p := range cfg.Paths {
		a.Host.InstallPathTier(a.Instance, p.DstSite, p.Hops, p.Tier)
		next[p.DstSite] = true
	}
	for dst := range a.installed {
		if !next[dst] {
			a.Host.RemovePath(a.Instance, dst)
		}
	}
	a.installed = next
}

// nextWait computes Run's next poll delay from the last delay and Poll's
// outcome. Transport-level failures double the wait up to max so a fleet
// facing a dead database does not keep hammering it at full rate; a clean
// poll or an application-level failure (ErrBadRecord — the database
// answered, one record is corrupt) re-polls at the base interval, because
// backing off would only delay picking up the repaired record.
func nextWait(wait, base, max time.Duration, err error) time.Duration {
	if err == nil || errors.Is(err, ErrBadRecord) {
		return base
	}
	if wait *= 2; wait > max {
		wait = max
	}
	return wait
}

// jitter returns a seeded random duration in [0, d]. The stream is seeded
// from the agent's Slot so a fleet's jitter is reproducible yet distinct per
// agent; only the polling goroutine touches the rng.
func (a *Agent) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	if a.rng == nil {
		// Splitmix-style seed spread so adjacent slots land far apart in the
		// stream (the overflow wrap is deliberate).
		a.rng = rand.New(rand.NewSource(int64(uint64(a.Slot+1) * 0x9E3779B97F4A7C15)))
	}
	return time.Duration(a.rng.Int63n(int64(d) + 1))
}

// jitterWait maps nextWait's deterministic schedule to the actual sleep.
// Clean polls keep the exact interval — the Slot spread already disperses
// the steady state. Failures de-correlate: without jitter, every agent that
// failed in the same window (a partition, a dead shard) computes the same
// doubled wait and the whole cohort retries in lockstep, re-creating the
// herd each round. The sleep becomes half-jittered, [wait/2, wait], the
// kvstore.Backoff semantics; a BUSY failure instead honors the server's
// suggested retry-after plus up to half again of jitter, never sooner than
// suggested.
func (a *Agent) jitterWait(wait time.Duration, err error) time.Duration {
	if err == nil || errors.Is(err, ErrBadRecord) {
		return wait
	}
	var be *kvstore.BusyError
	if errors.As(err, &be) {
		r := be.RetryAfter
		if r <= 0 {
			r = kvstore.DefaultRetryAfter
		}
		return r + a.jitter(r/2)
	}
	return wait/2 + a.jitter(wait/2)
}

// Run polls on the interval, offset by the agent's spread slot, until the
// context ends. Poll errors are counted but do not stop the loop (the
// database may be briefly unreachable; eventual consistency tolerates it);
// consecutive transport failures grow the wait under nextWait's schedule.
func (a *Agent) Run(ctx context.Context, interval time.Duration) error {
	select {
	case <-time.After(a.SpreadDelay(interval)):
	case <-ctx.Done():
		return ctx.Err()
	}
	maxWait := a.MaxBackoff
	if maxWait <= 0 {
		maxWait = 8 * interval
	}
	wait := interval
	for {
		_, err := a.Poll()
		if ctx.Err() != nil {
			return ctx.Err()
		}
		wait = nextWait(wait, interval, maxWait, err)
		select {
		case <-time.After(a.jitterWait(wait, err)):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}
