package controlplane

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"megate/internal/hoststack"
	"megate/internal/telemetry"
)

// ErrBadRecord reports a poll that reached the database but found a corrupt
// record. It is an application error, not a transport one: Run keeps polling
// at the base interval instead of backing off, because the database is up
// and the next interval's write may already have replaced the record.
var ErrBadRecord = errors.New("bad config")

// ConfigReader is the agent's read interface to the TE database; both
// *kvstore.Store (in-process) and *kvstore.Client satisfy it through the
// adapters below.
type ConfigReader interface {
	ReadVersion() (uint64, error)
	ReadConfig(key string) ([]byte, bool, error)
}

// ReadVersion implements ConfigReader for StoreAdapter.
func (a StoreAdapter) ReadVersion() (uint64, error) { return a.Store.Version(), nil }

// ReadConfig implements ConfigReader for StoreAdapter.
func (a StoreAdapter) ReadConfig(key string) ([]byte, bool, error) {
	v, ok := a.Store.Get(key)
	return v, ok, nil
}

// ReadVersion implements ConfigReader for ClientAdapter.
func (a ClientAdapter) ReadVersion() (uint64, error) { return a.Client.Version() }

// ReadConfig implements ConfigReader for ClientAdapter.
func (a ClientAdapter) ReadConfig(key string) ([]byte, bool, error) {
	return a.Client.Get(key)
}

// Agent is the endpoint agent of §3.2 and Figure 6: it polls the TE
// database for the configuration version and, when it moves, pulls the
// instance's record and installs the SR paths into the host's path_map.
type Agent struct {
	Instance string
	Reader   ConfigReader
	// Host receives InstallPath calls; nil is allowed for agents used only
	// to measure the synchronization protocol.
	Host *hoststack.Host

	// Slot and SlotCount spread agents' polls across the poll window so
	// the database sees a flat query rate ("each part initiates queries
	// asynchronously during a specific time period", §3.2).
	Slot, SlotCount int

	// StaleAfter is the staleness TTL in consecutive failed polls: once the
	// agent cannot reach the database for StaleAfter polls in a row, it
	// uninstalls its pinned SR paths so the instance falls back to
	// conventional routing (§6.3's failure reaction — stale pinned paths may
	// point through links the unreachable controller already routed around).
	// Paths are reinstalled on the first successful poll after recovery.
	// Zero disables the TTL.
	StaleAfter int
	// MaxBackoff caps the poll interval growth of Run while the database is
	// unreachable; zero means 8x the base interval.
	MaxBackoff time.Duration
	// Metrics routes the fleet-level agent counters (polls, updates, errors,
	// TTL fallbacks); nil uses telemetry.Default. Per-agent counts stay
	// available through the accessors regardless.
	Metrics *telemetry.Registry

	mOnce sync.Once
	m     *agentMetrics

	// The counters below are telemetry atomics: Run's goroutine increments
	// them while Stats/Errors/Degraded/FallbackStats read concurrently, so
	// plain fields here would be a data race.
	lastVersion atomic.Uint64
	polls       telemetry.Counter
	updates     telemetry.Counter
	emptyAcks   telemetry.Counter
	errs        telemetry.Counter
	degraded    atomic.Bool
	fallbacks   telemetry.Counter
	recoveries  telemetry.Counter
	// consecFails counts consecutive polls that failed at the transport
	// level. It is only touched by the polling goroutine and has no
	// accessor, so it needs no synchronization.
	consecFails int
	// installed tracks the destinations currently in the host's path_map
	// so stale entries are removed when a new configuration drops them.
	// Only the polling goroutine touches it.
	installed map[uint32]bool
}

// metrics lazily binds the fleet-level registry series.
func (a *Agent) metrics() *agentMetrics {
	a.mOnce.Do(func() {
		reg := a.Metrics
		if reg == nil {
			reg = telemetry.Default
		}
		a.m = newAgentMetrics(reg)
	})
	return a.m
}

// SpreadDelay returns when within a window of the given length this agent
// should poll.
func (a *Agent) SpreadDelay(window time.Duration) time.Duration {
	if a.SlotCount <= 1 {
		return 0
	}
	return window * time.Duration(a.Slot) / time.Duration(a.SlotCount)
}

// LastVersion returns the configuration version the agent has applied.
func (a *Agent) LastVersion() uint64 { return a.lastVersion.Load() }

// Stats returns how many polls the agent issued and how many brought a new
// configuration record that was applied.
func (a *Agent) Stats() (polls, updates uint64) { return a.polls.Value(), a.updates.Value() }

// EmptyAcks returns how many polls consumed a version advance that carried
// no record for this instance (all its flows rejected, or no traffic).
func (a *Agent) EmptyAcks() uint64 { return a.emptyAcks.Value() }

// Errors returns how many polls failed (unreachable database, bad record).
func (a *Agent) Errors() uint64 { return a.errs.Value() }

// Degraded reports whether the staleness TTL has fired: the agent removed
// its pinned paths and the instance is on conventional routing.
func (a *Agent) Degraded() bool { return a.degraded.Load() }

// FallbackStats returns how many times the staleness TTL uninstalled the
// pinned paths and how many times a later successful poll reinstated them.
func (a *Agent) FallbackStats() (fallbacks, recoveries uint64) {
	return a.fallbacks.Value(), a.recoveries.Value()
}

// noteUnreachable records a transport-level poll failure and fires the
// staleness TTL once StaleAfter consecutive failures accumulate.
func (a *Agent) noteUnreachable() {
	a.consecFails++
	if a.StaleAfter <= 0 || a.consecFails < a.StaleAfter || a.degraded.Load() {
		return
	}
	a.degraded.Store(true)
	a.fallbacks.Inc()
	m := a.metrics()
	m.fallbacks.Inc()
	m.degraded.Add(1)
	if a.Host != nil {
		for dst := range a.installed {
			a.Host.RemovePath(a.Instance, dst)
		}
	}
	a.installed = nil
}

// Poll performs one version check, pulling and installing the instance's
// configuration when the version advanced. It reports whether new
// configuration was applied.
func (a *Agent) Poll() (bool, error) {
	m := a.metrics()
	a.polls.Inc()
	m.polls.Inc()
	v, err := a.Reader.ReadVersion()
	if err != nil {
		a.errs.Inc()
		m.errs.Inc()
		a.noteUnreachable()
		return false, err
	}
	// While degraded the agent must re-pull even at an unchanged version:
	// the TTL dropped its paths, so "consistent with v" no longer means
	// "installed".
	recovering := a.degraded.Load()
	if v == a.lastVersion.Load() && !recovering {
		a.consecFails = 0
		return false, nil
	}
	data, ok, err := a.Reader.ReadConfig(ConfigKey(a.Instance))
	if err != nil {
		a.errs.Inc()
		m.errs.Inc()
		a.noteUnreachable()
		return false, err
	}
	a.consecFails = 0
	if ok {
		var cfg InstanceConfig
		if err := json.Unmarshal(data, &cfg); err != nil {
			// A corrupt record is a failed poll — count it — but the database
			// was reachable, so it does not advance the staleness TTL, and
			// the previously installed (still-valid) paths stay in place.
			a.errs.Inc()
			m.errs.Inc()
			return false, fmt.Errorf("controlplane: agent %s: %w: %v", a.Instance, ErrBadRecord, err)
		}
		a.apply(&cfg)
		a.updates.Inc()
		m.updates.Inc()
	} else {
		if a.Host != nil {
			// No record under the new version: this instance's flows were all
			// rejected or it has no traffic; stale pinned paths must go.
			for dst := range a.installed {
				a.Host.RemovePath(a.Instance, dst)
			}
			a.installed = nil
		}
		// The version advance is consumed, but nothing was installed: an
		// empty ack, not an update.
		a.emptyAcks.Inc()
		m.emptyAcks.Inc()
	}
	if recovering {
		a.degraded.Store(false)
		a.recoveries.Inc()
		m.recoveries.Inc()
		m.degraded.Add(-1)
	}
	// Even when this instance has no record (all its flows were rejected
	// or it has no traffic), the agent is now consistent with version v.
	a.lastVersion.Store(v)
	return true, nil
}

// apply installs the configuration's paths and removes entries the new
// configuration no longer carries.
func (a *Agent) apply(cfg *InstanceConfig) {
	if a.Host == nil {
		return
	}
	next := make(map[uint32]bool, len(cfg.Paths))
	for _, p := range cfg.Paths {
		a.Host.InstallPath(a.Instance, p.DstSite, p.Hops)
		next[p.DstSite] = true
	}
	for dst := range a.installed {
		if !next[dst] {
			a.Host.RemovePath(a.Instance, dst)
		}
	}
	a.installed = next
}

// nextWait computes Run's next poll delay from the last delay and Poll's
// outcome. Transport-level failures double the wait up to max so a fleet
// facing a dead database does not keep hammering it at full rate; a clean
// poll or an application-level failure (ErrBadRecord — the database
// answered, one record is corrupt) re-polls at the base interval, because
// backing off would only delay picking up the repaired record.
func nextWait(wait, base, max time.Duration, err error) time.Duration {
	if err == nil || errors.Is(err, ErrBadRecord) {
		return base
	}
	if wait *= 2; wait > max {
		wait = max
	}
	return wait
}

// Run polls on the interval, offset by the agent's spread slot, until the
// context ends. Poll errors are counted but do not stop the loop (the
// database may be briefly unreachable; eventual consistency tolerates it);
// consecutive transport failures grow the wait under nextWait's schedule.
func (a *Agent) Run(ctx context.Context, interval time.Duration) error {
	select {
	case <-time.After(a.SpreadDelay(interval)):
	case <-ctx.Done():
		return ctx.Err()
	}
	maxWait := a.MaxBackoff
	if maxWait <= 0 {
		maxWait = 8 * interval
	}
	wait := interval
	for {
		_, err := a.Poll()
		if ctx.Err() != nil {
			return ctx.Err()
		}
		wait = nextWait(wait, interval, maxWait, err)
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}
