package controlplane

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"megate/internal/hoststack"
)

// ConfigReader is the agent's read interface to the TE database; both
// *kvstore.Store (in-process) and *kvstore.Client satisfy it through the
// adapters below.
type ConfigReader interface {
	ReadVersion() (uint64, error)
	ReadConfig(key string) ([]byte, bool, error)
}

// ReadVersion implements ConfigReader for StoreAdapter.
func (a StoreAdapter) ReadVersion() (uint64, error) { return a.Store.Version(), nil }

// ReadConfig implements ConfigReader for StoreAdapter.
func (a StoreAdapter) ReadConfig(key string) ([]byte, bool, error) {
	v, ok := a.Store.Get(key)
	return v, ok, nil
}

// ReadVersion implements ConfigReader for ClientAdapter.
func (a ClientAdapter) ReadVersion() (uint64, error) { return a.Client.Version() }

// ReadConfig implements ConfigReader for ClientAdapter.
func (a ClientAdapter) ReadConfig(key string) ([]byte, bool, error) {
	return a.Client.Get(key)
}

// Agent is the endpoint agent of §3.2 and Figure 6: it polls the TE
// database for the configuration version and, when it moves, pulls the
// instance's record and installs the SR paths into the host's path_map.
type Agent struct {
	Instance string
	Reader   ConfigReader
	// Host receives InstallPath calls; nil is allowed for agents used only
	// to measure the synchronization protocol.
	Host *hoststack.Host

	// Slot and SlotCount spread agents' polls across the poll window so
	// the database sees a flat query rate ("each part initiates queries
	// asynchronously during a specific time period", §3.2).
	Slot, SlotCount int

	lastVersion uint64
	polls       uint64
	updates     uint64
	errors      uint64
	// installed tracks the destinations currently in the host's path_map
	// so stale entries are removed when a new configuration drops them.
	installed map[uint32]bool
}

// SpreadDelay returns when within a window of the given length this agent
// should poll.
func (a *Agent) SpreadDelay(window time.Duration) time.Duration {
	if a.SlotCount <= 1 {
		return 0
	}
	return window * time.Duration(a.Slot) / time.Duration(a.SlotCount)
}

// LastVersion returns the configuration version the agent has applied.
func (a *Agent) LastVersion() uint64 { return a.lastVersion }

// Stats returns how many polls the agent issued and how many brought a new
// configuration.
func (a *Agent) Stats() (polls, updates uint64) { return a.polls, a.updates }

// Errors returns how many polls failed (unreachable database, bad record).
func (a *Agent) Errors() uint64 { return a.errors }

// Poll performs one version check, pulling and installing the instance's
// configuration when the version advanced. It reports whether new
// configuration was applied.
func (a *Agent) Poll() (bool, error) {
	a.polls++
	v, err := a.Reader.ReadVersion()
	if err != nil {
		a.errors++
		return false, err
	}
	if v == a.lastVersion {
		return false, nil
	}
	data, ok, err := a.Reader.ReadConfig(ConfigKey(a.Instance))
	if err != nil {
		a.errors++
		return false, err
	}
	if ok {
		var cfg InstanceConfig
		if err := json.Unmarshal(data, &cfg); err != nil {
			return false, fmt.Errorf("controlplane: agent %s: bad config: %w", a.Instance, err)
		}
		a.apply(&cfg)
	} else if a.Host != nil {
		// No record under the new version: this instance's flows were all
		// rejected or it has no traffic; stale pinned paths must go.
		for dst := range a.installed {
			a.Host.RemovePath(a.Instance, dst)
		}
		a.installed = nil
	}
	// Even when this instance has no record (all its flows were rejected
	// or it has no traffic), the agent is now consistent with version v.
	a.lastVersion = v
	a.updates++
	return true, nil
}

// apply installs the configuration's paths and removes entries the new
// configuration no longer carries.
func (a *Agent) apply(cfg *InstanceConfig) {
	if a.Host == nil {
		return
	}
	next := make(map[uint32]bool, len(cfg.Paths))
	for _, p := range cfg.Paths {
		a.Host.InstallPath(a.Instance, p.DstSite, p.Hops)
		next[p.DstSite] = true
	}
	for dst := range a.installed {
		if !next[dst] {
			a.Host.RemovePath(a.Instance, dst)
		}
	}
	a.installed = next
}

// Run polls on the interval, offset by the agent's spread slot, until the
// context ends. Poll errors are counted but do not stop the loop (the
// database may be briefly unreachable; eventual consistency tolerates it).
func (a *Agent) Run(ctx context.Context, interval time.Duration) error {
	select {
	case <-time.After(a.SpreadDelay(interval)):
	case <-ctx.Done():
		return ctx.Err()
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		if _, err := a.Poll(); err != nil && ctx.Err() != nil {
			return ctx.Err()
		}
		select {
		case <-ticker.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}
