package controlplane

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"megate/internal/cluster"
	"megate/internal/core"
	"megate/internal/kvstore"
	"megate/internal/telemetry"
	"megate/internal/topology"
	"megate/internal/traffic"
)

// dumpStore snapshots every config record in an in-process store.
func dumpStore(t *testing.T, s *kvstore.Store) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte)
	for _, k := range s.Keys(configPrefix) {
		v, ok := s.Get(k)
		if !ok {
			t.Fatalf("key %s listed but missing", k)
		}
		out[k] = v
	}
	return out
}

// dumpCluster snapshots every config record across all shards.
func dumpCluster(t *testing.T, c *cluster.Client) map[string][]byte {
	t.Helper()
	keys, err := c.Keys(configPrefix)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]byte)
	for _, k := range keys {
		v, ok, err := c.Get(k)
		if err != nil || !ok {
			t.Fatalf("get %s: ok=%v err=%v", k, ok, err)
		}
		out[k] = v
	}
	return out
}

func sameDump(t *testing.T, label string, got, want map[string][]byte) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: %d records, want %d", label, len(got), len(want))
	}
	for k, wv := range want {
		gv, ok := got[k]
		if !ok {
			t.Errorf("%s: missing record %s", label, k)
			continue
		}
		if !bytes.Equal(gv, wv) {
			t.Errorf("%s: record %s differs:\n got %s\nwant %s", label, k, gv, wv)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("%s: unexpected record %s", label, k)
		}
	}
}

// TestStreamingEquivalence is the overlap-safety regression test (run under
// -race by verify.sh): RunIntervalStreaming must leave exactly the store
// contents, stats, and published version of the barriered RunInterval, across
// intervals with demand churn, instance disappearance, and reappearance.
func TestStreamingEquivalence(t *testing.T) {
	topo := topology.BuildB4()
	topology.AttachEndpointsExact(topo, 3)
	m1 := traffic.Generate(topo, traffic.GenOptions{Seed: 7, MeanDemandMbps: 20})

	// Interval 2: perturb demands so some pairs resolve differently.
	flows2 := append([]traffic.Flow(nil), m1.Flows...)
	for i := range flows2 {
		if i%3 == 0 {
			flows2[i].DemandMbps *= 1.7
		}
	}
	m2 := traffic.NewMatrix(flows2)

	// Interval 3: drop one instance's flows entirely (tombstone path).
	victim := topo.Endpoints[0].Instance
	var flows3 []traffic.Flow
	for _, f := range flows2 {
		if topo.Endpoints[f.Src].Instance != victim {
			flows3 = append(flows3, f)
		}
	}
	if len(flows3) == len(flows2) {
		t.Fatalf("victim %s sources no flows", victim)
	}
	m3 := traffic.NewMatrix(flows3)

	opts := core.Options{Incremental: true, SplitQoS: true, Workers: 4}
	regB, regS := telemetry.NewRegistry(), telemetry.NewRegistry()
	storeB, storeS := kvstore.NewStore(4), kvstore.NewStore(4)
	barriered := NewController(core.NewSolver(topo, opts), StoreAdapter{Store: storeB})
	barriered.Metrics = regB
	streaming := NewController(core.NewSolver(topo, opts), StoreAdapter{Store: storeS})
	streaming.Metrics = regS

	for i, m := range []*traffic.Matrix{m1, m2, m3, m2} {
		if _, _, err := barriered.RunInterval(m); err != nil {
			t.Fatalf("interval %d barriered: %v", i+1, err)
		}
		if _, _, err := streaming.RunIntervalStreaming(m); err != nil {
			t.Fatalf("interval %d streaming: %v", i+1, err)
		}
		label := fmt.Sprintf("interval %d", i+1)
		sameDump(t, label, dumpStore(t, storeS), dumpStore(t, storeB))
		if sv, bv := streaming.Version(), barriered.Version(); sv != bv {
			t.Errorf("%s: version %d, want %d", label, sv, bv)
		}
		if sv, bv := storeS.Version(), storeB.Version(); sv != bv {
			t.Errorf("%s: store version %d, want %d", label, sv, bv)
		}
		if ss, bs := streaming.LastStats(), barriered.LastStats(); ss != bs {
			t.Errorf("%s: stats %+v, want %+v", label, ss, bs)
		}
	}

	// The pipeline really overlapped: with every record new in interval 1,
	// the overlap fraction must be positive (streamed writes landed before
	// the sweep).
	if f := regS.Gauge(MetricPublishOverlapFrac).Value(); f <= 0 {
		t.Errorf("publish overlap fraction = %v, want > 0", f)
	}
}

// flakyNode injects write failures on one shard while down is set; reads,
// deletes, and publishes keep working — the partial-shard-loss posture.
type flakyNode struct {
	cluster.StoreNode
	down *atomic.Bool
}

var errShardDown = errors.New("shard write refused")

func (n flakyNode) Put(key string, value []byte) error {
	if n.down.Load() {
		return errShardDown
	}
	return n.StoreNode.Put(key, value)
}

func (n flakyNode) PutBatch(keys []string, values [][]byte) (int, error) {
	if n.down.Load() {
		return 0, errShardDown
	}
	return n.StoreNode.PutBatch(keys, values)
}

// buildFlakyCluster assembles a 3-shard StoreNode cluster whose middle shard
// refuses writes while down is set. Identical ring parameters across calls
// give identical placement, so two clusters see the same fault surface.
func buildFlakyCluster(t *testing.T, down *atomic.Bool) *cluster.Client {
	t.Helper()
	c := cluster.New(32, 11, func(c *cluster.Client) { c.Metrics = telemetry.NewRegistry() })
	for i := 0; i < 3; i++ {
		var nc cluster.NodeClient = cluster.StoreNode{Store: kvstore.NewStore(4)}
		if i == 1 {
			nc = flakyNode{StoreNode: nc.(cluster.StoreNode), down: down}
		}
		if err := c.Join(fmt.Sprintf("db%d", i), nc); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// TestStreamingShardErrorEquivalence pins the TolerateWriteErrors contract
// under a mid-stream shard write failure: the streaming interval completes,
// publishes, and leaves exactly the state the barriered publisher leaves
// under the same fault — and after the shard heals, both converge on the
// identical full config set.
func TestStreamingShardErrorEquivalence(t *testing.T) {
	topo := topology.BuildB4()
	topology.AttachEndpointsExact(topo, 3)
	m := traffic.Generate(topo, traffic.GenOptions{Seed: 9, MeanDemandMbps: 20})
	opts := core.Options{Incremental: true, Workers: 4}

	var downB, downS atomic.Bool
	downB.Store(true)
	downS.Store(true)
	clusterB := buildFlakyCluster(t, &downB)
	clusterS := buildFlakyCluster(t, &downS)

	barriered := NewController(core.NewSolver(topo, opts), ClusterAdapter{Client: clusterB})
	barriered.TolerateWriteErrors = true
	barriered.Metrics = telemetry.NewRegistry()
	streaming := NewController(core.NewSolver(topo, opts), ClusterAdapter{Client: clusterS})
	streaming.TolerateWriteErrors = true
	streaming.Metrics = telemetry.NewRegistry()

	// Interval 1: shard db1 refuses every write, mid-stream for the
	// streaming controller. Both controllers must tolerate, publish, and
	// agree on the surviving state.
	if _, _, err := barriered.RunInterval(m); err != nil {
		t.Fatalf("barriered with down shard: %v", err)
	}
	if _, _, err := streaming.RunIntervalStreaming(m); err != nil {
		t.Fatalf("streaming with down shard: %v", err)
	}
	bs, ss := barriered.LastStats(), streaming.LastStats()
	if bs.WriteErrors == 0 {
		t.Fatal("fault did not bite: no record homed on the down shard")
	}
	if ss != bs {
		t.Errorf("interval 1 stats: streaming %+v, barriered %+v", ss, bs)
	}
	if sv, bv := streaming.Version(), barriered.Version(); sv != 1 || bv != 1 {
		t.Errorf("versions after tolerated fault = %d / %d, want 1", sv, bv)
	}
	sameDump(t, "interval 1 (shard down)", dumpCluster(t, clusterS), dumpCluster(t, clusterB))

	// Heal the shard; the same matrix must now backfill exactly the dropped
	// records (their hashes were discarded) on both controllers.
	downB.Store(false)
	downS.Store(false)
	if _, _, err := barriered.RunInterval(m); err != nil {
		t.Fatal(err)
	}
	if _, _, err := streaming.RunIntervalStreaming(m); err != nil {
		t.Fatal(err)
	}
	bs, ss = barriered.LastStats(), streaming.LastStats()
	if bs.WriteErrors != 0 || ss.WriteErrors != 0 {
		t.Errorf("write errors after heal: streaming %d, barriered %d, want 0", ss.WriteErrors, bs.WriteErrors)
	}
	if bs.Written == 0 {
		t.Error("healed interval rewrote nothing; dropped hashes were not retried")
	}
	if ss != bs {
		t.Errorf("interval 2 stats: streaming %+v, barriered %+v", ss, bs)
	}
	sameDump(t, "interval 2 (healed)", dumpCluster(t, clusterS), dumpCluster(t, clusterB))
	if n := len(dumpCluster(t, clusterS)); n == 0 {
		t.Fatal("no records after heal")
	}
}
