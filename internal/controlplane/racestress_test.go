package controlplane

import (
	"context"
	"sync"
	"testing"
	"time"

	"megate/internal/core"
	"megate/internal/kvstore"
	"megate/internal/topology"
	"megate/internal/traffic"
)

// TestRaceStressDeltaPublication hammers the eventual-consistency protocol
// from both sides under the race detector: one controller goroutine
// alternates between two demand matrices — producing fresh writes, delta
// skips, AND tombstone deletes every other interval — while a fleet of
// agent goroutines polls the shared store as fast as it can. The assertions
// are deliberately weak (no torn reads crash the agents; everyone converges
// once publication stops); the real check is `go test -race` observing the
// concurrent Store/Controller/Agent access patterns.
func TestRaceStressDeltaPublication(t *testing.T) {
	topo := topology.BuildB4()
	topology.AttachEndpointsExact(topo, 2)
	mFull := traffic.Generate(topo, traffic.GenOptions{Seed: 1, MeanDemandMbps: 20})
	// The half matrix drops every flow sourced at an odd endpoint: those
	// instances lose all pinned paths, so alternating matrices exercises
	// the tombstone path each interval, not just on a special one.
	var halfFlows []traffic.Flow
	for _, f := range mFull.Flows {
		if f.Src%2 == 0 {
			halfFlows = append(halfFlows, f)
		}
	}
	mHalf := traffic.NewMatrix(halfFlows)

	solver := core.NewSolver(topo, core.Options{Incremental: true})
	store := kvstore.NewStore(2)
	ctrl := NewController(solver, StoreAdapter{Store: store})

	deadline := 1500 * time.Millisecond
	if testing.Short() {
		deadline = 300 * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()

	var wg sync.WaitGroup

	// Publisher: the TE loop is sequential by design, so one goroutine owns
	// the controller and flips between the matrices.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ctx.Err() == nil; i++ {
			m := mFull
			if i%2 == 1 {
				m = mHalf
			}
			if _, _, err := ctrl.RunInterval(m); err != nil {
				t.Errorf("interval %d: %v", i, err)
				return
			}
		}
	}()

	// Agents: each goroutine owns one Agent (agents are single-threaded;
	// only the store underneath is shared) polling with no pacing at all —
	// far harsher than the spread-window production schedule.
	const nAgents = 12
	agents := make([]*Agent, nAgents)
	for i := range agents {
		agents[i] = &Agent{
			Instance: topo.Endpoints[i%len(topo.Endpoints)].Instance,
			Reader:   StoreAdapter{Store: store},
		}
		wg.Add(1)
		go func(a *Agent) {
			defer wg.Done()
			for ctx.Err() == nil {
				if _, err := a.Poll(); err != nil {
					t.Errorf("agent %s: %v", a.Instance, err)
					return
				}
			}
		}(agents[i])
	}

	<-ctx.Done()
	wg.Wait()

	// Quiesced convergence: with publication stopped, one more poll brings
	// every agent to the final published version.
	final := ctrl.Version()
	if final == 0 {
		t.Fatal("publisher never completed an interval")
	}
	for _, a := range agents {
		if _, err := a.Poll(); err != nil {
			t.Fatalf("final poll for %s: %v", a.Instance, err)
		}
		if got := a.LastVersion(); got != final {
			t.Errorf("agent %s at version %d after quiesce, want %d", a.Instance, got, final)
		}
		if polls, _ := a.Stats(); polls == 0 {
			t.Errorf("agent %s never polled", a.Instance)
		}
	}
}
