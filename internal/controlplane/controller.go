// Package controlplane implements MegaTE's bottom-up control loop (§3.2,
// Figure 4b) and the conventional top-down loop it replaces (Figure 4a).
//
// Bottom-up: the Controller solves TE, writes one configuration record per
// virtual instance into the TE database (package kvstore), and publishes an
// incremented version. Each endpoint Agent polls the version over a cheap
// short connection — with its poll time spread across the window so the
// database sees a flat query rate — and pulls its record only when the
// version moved, installing the new SR paths into the host's path_map.
// All endpoints converge on the new configuration within one spread window:
// eventual consistency in exchange for a controller that holds no
// connections at all.
//
// Top-down (package file topdown.go): a controller endpoint-facing server
// that must hold one persistent heartbeat connection per endpoint — the
// resource-exhausting design quantified in Figures 13 and 14.
package controlplane

import (
	"encoding/json"
	"fmt"
	"sync/atomic"

	"megate/internal/core"
	"megate/internal/kvstore"
	"megate/internal/topology"
	"megate/internal/traffic"
)

// PathEntry is one SR path decision: traffic of the instance toward
// DstSite follows Hops.
type PathEntry struct {
	DstSite uint32   `json:"dst_site"`
	Hops    []uint32 `json:"hops"`
}

// InstanceConfig is the TE configuration record for one virtual instance,
// the value stored under ConfigKey(instance) in the TE database.
type InstanceConfig struct {
	Instance string      `json:"instance"`
	Version  uint64      `json:"version"`
	Paths    []PathEntry `json:"paths"`
}

// ConfigKey returns the database key for an instance's configuration.
func ConfigKey(instance string) string { return "te/cfg/" + instance }

// ConfigStore is the controller's write interface to the TE database; both
// *kvstore.Store (in-process) and *kvstore.Client (over TCP) satisfy it via
// the adapters below.
type ConfigStore interface {
	PutConfig(key string, value []byte) error
	PublishVersion(v uint64) error
}

// StoreAdapter adapts an in-process *kvstore.Store.
type StoreAdapter struct{ Store *kvstore.Store }

// PutConfig implements ConfigStore.
func (a StoreAdapter) PutConfig(key string, value []byte) error {
	a.Store.Put(key, value)
	return nil
}

// PublishVersion implements ConfigStore.
func (a StoreAdapter) PublishVersion(v uint64) error {
	a.Store.Publish(v)
	return nil
}

// ClientAdapter adapts a *kvstore.Client over TCP.
type ClientAdapter struct{ Client *kvstore.Client }

// PutConfig implements ConfigStore.
func (a ClientAdapter) PutConfig(key string, value []byte) error {
	return a.Client.Put(key, value)
}

// PublishVersion implements ConfigStore.
func (a ClientAdapter) PublishVersion(v uint64) error {
	return a.Client.Publish(v)
}

// Controller runs the periodic TE loop: solve, write configs, publish.
type Controller struct {
	Solver *core.Solver
	Store  ConfigStore

	version atomic.Uint64
}

// NewController wires a solver to a config store.
func NewController(solver *core.Solver, store ConfigStore) *Controller {
	return &Controller{Solver: solver, Store: store}
}

// Version returns the last published configuration version.
func (c *Controller) Version() uint64 { return c.version.Load() }

// RunInterval executes one TE interval (or a failure-triggered recompute):
// solve the matrix, write per-instance configurations, publish the next
// version. It returns the TE result and the number of instance records
// written.
func (c *Controller) RunInterval(m *traffic.Matrix) (*core.Result, int, error) {
	res, err := c.Solver.Solve(m)
	if err != nil {
		return nil, 0, err
	}
	next := c.version.Load() + 1
	configs := BuildConfigs(c.Solver.Topology(), m, res, next)
	for ins, cfg := range configs {
		data, err := json.Marshal(cfg)
		if err != nil {
			return nil, 0, fmt.Errorf("controlplane: marshal config for %s: %w", ins, err)
		}
		if err := c.Store.PutConfig(ConfigKey(ins), data); err != nil {
			return nil, 0, fmt.Errorf("controlplane: write config for %s: %w", ins, err)
		}
	}
	if err := c.Store.PublishVersion(next); err != nil {
		return nil, 0, err
	}
	c.version.Store(next)
	return res, len(configs), nil
}

// OnLinkFailure invalidates cached tunnels and recomputes immediately — the
// fast failure reaction of §6.3.
func (c *Controller) OnLinkFailure(m *traffic.Matrix) (*core.Result, int, error) {
	c.Solver.Invalidate()
	return c.RunInterval(m)
}

// BuildConfigs groups the per-flow tunnel assignments of a TE result into
// per-instance configuration records. Flows that were rejected produce no
// entry (their instance keeps no pinned path and falls back to conventional
// routing).
func BuildConfigs(topo *topology.Topology, m *traffic.Matrix, res *core.Result, version uint64) map[string]*InstanceConfig {
	configs := make(map[string]*InstanceConfig)
	for i, tn := range res.FlowTunnel {
		if tn == nil {
			continue
		}
		f := &m.Flows[i]
		ins := topo.Endpoints[f.Src].Instance
		cfg := configs[ins]
		if cfg == nil {
			cfg = &InstanceConfig{Instance: ins, Version: version}
			configs[ins] = cfg
		}
		hops := make([]uint32, len(tn.Sites))
		for j, s := range tn.Sites {
			hops[j] = uint32(s)
		}
		dst := uint32(f.Pair.Dst)
		replaced := false
		for k := range cfg.Paths {
			if cfg.Paths[k].DstSite == dst {
				cfg.Paths[k].Hops = hops
				replaced = true
				break
			}
		}
		if !replaced {
			cfg.Paths = append(cfg.Paths, PathEntry{DstSite: dst, Hops: hops})
		}
	}
	return configs
}
