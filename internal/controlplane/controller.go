// Package controlplane implements MegaTE's bottom-up control loop (§3.2,
// Figure 4b) and the conventional top-down loop it replaces (Figure 4a).
//
// Bottom-up: the Controller solves TE, writes one configuration record per
// virtual instance into the TE database (package kvstore), and publishes an
// incremented version. Each endpoint Agent polls the version over a cheap
// short connection — with its poll time spread across the window so the
// database sees a flat query rate — and pulls its record only when the
// version moved, installing the new SR paths into the host's path_map.
// All endpoints converge on the new configuration within one spread window:
// eventual consistency in exchange for a controller that holds no
// connections at all.
//
// Top-down (package file topdown.go): a controller endpoint-facing server
// that must hold one persistent heartbeat connection per endpoint — the
// resource-exhausting design quantified in Figures 13 and 14.
package controlplane

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"megate/internal/core"
	"megate/internal/kvstore"
	"megate/internal/telemetry"
	"megate/internal/topology"
	"megate/internal/traffic"
)

// PathEntry is one SR path decision: traffic of the instance toward
// DstSite follows Hops. Tier is the tunnel-tier rank the solver selected
// under a service policy (stamped only for flows whose app carries a tier
// bound; zero — and omitted from the JSON — otherwise, so unannotated
// records serialize exactly as before the policy layer existed).
type PathEntry struct {
	DstSite uint32   `json:"dst_site"`
	Hops    []uint32 `json:"hops"`
	Tier    uint8    `json:"tier,omitempty"`
}

// InstanceConfig is the TE configuration record for one virtual instance,
// the value stored under ConfigKey(instance) in the TE database.
type InstanceConfig struct {
	Instance string      `json:"instance"`
	Version  uint64      `json:"version"`
	Paths    []PathEntry `json:"paths"`
}

// configPrefix is the database key prefix for instance configurations; a
// restarted controller enumerates it to rebuild its delta state.
const configPrefix = "te/cfg/"

// ConfigKey returns the database key for an instance's configuration.
func ConfigKey(instance string) string { return configPrefix + instance }

// ConfigStore is the controller's write interface to the TE database; both
// *kvstore.Store (in-process) and *kvstore.Client (over TCP) satisfy it via
// the adapters below.
type ConfigStore interface {
	PutConfig(key string, value []byte) error
	DeleteConfig(key string) error
	PublishVersion(v uint64) error
}

// StoreAdapter adapts an in-process *kvstore.Store.
type StoreAdapter struct{ Store *kvstore.Store }

// PutConfig implements ConfigStore.
func (a StoreAdapter) PutConfig(key string, value []byte) error {
	a.Store.Put(key, value)
	return nil
}

// DeleteConfig implements ConfigStore.
func (a StoreAdapter) DeleteConfig(key string) error {
	a.Store.Delete(key)
	return nil
}

// PublishVersion implements ConfigStore.
func (a StoreAdapter) PublishVersion(v uint64) error {
	a.Store.Publish(v)
	return nil
}

// PutConfigBatch implements BatchConfigStore; in-process puts cannot fail.
func (a StoreAdapter) PutConfigBatch(keys []string, values [][]byte) ([]int, error) {
	for i, k := range keys {
		a.Store.Put(k, values[i])
	}
	return nil, nil
}

// ClientAdapter adapts a *kvstore.Client over TCP.
type ClientAdapter struct{ Client *kvstore.Client }

// PutConfig implements ConfigStore.
func (a ClientAdapter) PutConfig(key string, value []byte) error {
	return a.Client.Put(key, value)
}

// DeleteConfig implements ConfigStore.
func (a ClientAdapter) DeleteConfig(key string) error {
	return a.Client.Delete(key)
}

// PublishVersion implements ConfigStore.
func (a ClientAdapter) PublishVersion(v uint64) error {
	return a.Client.Publish(v)
}

// PutConfigBatch implements BatchConfigStore with one pipelined round-trip.
// A single kvstore server acknowledges a prefix of the batch; everything from
// the first unacknowledged record on is reported failed.
func (a ClientAdapter) PutConfigBatch(keys []string, values [][]byte) ([]int, error) {
	acked, err := a.Client.PutBatch(keys, values)
	if err == nil {
		return nil, nil
	}
	if acked < 0 || acked > len(keys) {
		acked = 0
	}
	failed := make([]int, 0, len(keys)-acked)
	for i := acked; i < len(keys); i++ {
		failed = append(failed, i)
	}
	return failed, err
}

// Controller runs the periodic TE loop: solve, write configs, publish.
// Configs are published as deltas: each interval only the instances whose
// configuration actually changed are rewritten (tracked by a
// version-independent hash of the record), instances whose pinned paths all
// disappeared get their record deleted, and everything else is left
// untouched — database write load scales with churn, not fleet size.
// Unchanged records keep the Version field of the interval that last wrote
// them; agents key off the published database version, not the field.
type Controller struct {
	Solver *core.Solver
	Store  ConfigStore
	// Metrics routes the controller's solve-stage timings and config write
	// counters; nil uses telemetry.Default.
	Metrics *telemetry.Registry
	// TolerateWriteErrors keeps an interval going past per-record write,
	// delete, and publish failures instead of aborting on the first one — the
	// sharded-database posture: one lost shard must not stop the controller
	// from converging every surviving shard. Failed writes drop their hash
	// (so the next interval rewrites the record once the shard heals), failed
	// deletes stay tracked for retry, a failed publish still advances the
	// controller's own version so the reachable shards that did accept it
	// stay consistent with it. The failures are counted in
	// IntervalStats.WriteErrors.
	TolerateWriteErrors bool

	mOnce sync.Once
	m     *controllerMetrics

	version atomic.Uint64
	// lastHash maps instance -> hash of its last written config. Only
	// RunInterval touches it (the TE loop is sequential).
	lastHash map[string]uint64
	stats    IntervalStats
}

// metrics lazily binds the controller's registry series.
func (c *Controller) metrics() *controllerMetrics {
	c.mOnce.Do(func() {
		reg := c.Metrics
		if reg == nil {
			reg = telemetry.Default
		}
		c.m = newControllerMetrics(reg)
	})
	return c.m
}

// IntervalStats breaks down the database writes of one RunInterval.
type IntervalStats struct {
	// Written counts instance records written (new or changed), Deleted
	// counts tombstoned records, Unchanged counts records skipped because
	// their hash matched the previous interval.
	Written, Deleted, Unchanged int
	// WriteErrors counts store operations that failed but were tolerated
	// (always zero unless Controller.TolerateWriteErrors is set).
	WriteErrors int
	// FastPathHits and FastPathFallbacks mirror the solver's stage-1
	// fast-path routing for the interval (core.Options.FastPath), and
	// OptimalityGap its largest certified relative duality gap. All zero
	// when the fast path is disabled.
	FastPathHits      int
	FastPathFallbacks int
	OptimalityGap     float64
}

// NewController wires a solver to a config store.
func NewController(solver *core.Solver, store ConfigStore) *Controller {
	return &Controller{Solver: solver, Store: store, lastHash: make(map[string]uint64)}
}

// Version returns the last published configuration version.
func (c *Controller) Version() uint64 { return c.version.Load() }

// LastStats returns the write breakdown of the most recent RunInterval.
func (c *Controller) LastStats() IntervalStats { return c.stats }

// RunInterval executes one TE interval (or a failure-triggered recompute):
// solve the matrix, write the per-instance configurations that changed,
// delete the ones that disappeared, publish the next version. It returns the
// TE result and the number of instance records written; LastStats has the
// full breakdown.
func (c *Controller) RunInterval(m *traffic.Matrix) (*core.Result, int, error) {
	cm := c.metrics()
	intervalStart := time.Now()
	res, err := c.Solver.Solve(m)
	if err != nil {
		cm.solveFails.Inc()
		return nil, 0, err
	}
	cm.stage["sitemerge"].Observe(res.SiteMergeTime.Seconds())
	cm.stage["maxsiteflow"].Observe(res.SiteLPTime.Seconds())
	cm.stage["fastssp"].Observe(res.SSPTime.Seconds())
	publishStart := time.Now()
	next := c.version.Load() + 1
	configs := BuildConfigs(c.Solver.Topology(), m, res, next)
	st := IntervalStats{}
	// Writes and deletes go out in sorted instance order: agents that poll
	// mid-publication then observe a deterministic prefix of the delta, and
	// two controllers replaying the same interval produce identical write
	// streams (map iteration order would randomize both).
	instances := make([]string, 0, len(configs))
	for ins := range configs {
		instances = append(instances, ins)
	}
	sort.Strings(instances)
	for _, ins := range instances {
		cfg := configs[ins]
		h := configHash(cfg)
		if prev, ok := c.lastHash[ins]; ok && prev == h {
			st.Unchanged++
			continue
		}
		data, err := json.Marshal(cfg)
		if err != nil {
			return nil, 0, fmt.Errorf("controlplane: marshal config for %s: %w", ins, err)
		}
		if err := c.Store.PutConfig(ConfigKey(ins), data); err != nil {
			// Drop the hash so the next interval rewrites this record: a write
			// that partially reached a replica fan-out would otherwise look
			// up-to-date forever while the replicas disagree.
			delete(c.lastHash, ins)
			if !c.TolerateWriteErrors {
				return nil, 0, fmt.Errorf("controlplane: write config for %s: %w", ins, err)
			}
			st.WriteErrors++
			continue
		}
		c.lastHash[ins] = h
		st.Written++
	}
	stale := make([]string, 0, len(c.lastHash))
	for ins := range c.lastHash {
		if _, ok := configs[ins]; !ok {
			stale = append(stale, ins)
		}
	}
	sort.Strings(stale)
	for _, ins := range stale {
		if err := c.Store.DeleteConfig(ConfigKey(ins)); err != nil {
			if !c.TolerateWriteErrors {
				return nil, 0, fmt.Errorf("controlplane: delete config for %s: %w", ins, err)
			}
			// Keep the instance in lastHash: it stays stale next interval, so
			// the delete is retried until the shard accepts it.
			st.WriteErrors++
			continue
		}
		delete(c.lastHash, ins)
		st.Deleted++
	}
	if err := c.Store.PublishVersion(next); err != nil {
		if !c.TolerateWriteErrors {
			return nil, 0, err
		}
		st.WriteErrors++
	}
	c.version.Store(next)
	st.noteFastPath(res, cm)
	c.stats = st
	cm.stage["publish"].Observe(time.Since(publishStart).Seconds())
	cm.interval.Observe(time.Since(intervalStart).Seconds())
	cm.intervals.Inc()
	cm.written.Add(uint64(st.Written))
	cm.deleted.Add(uint64(st.Deleted))
	cm.skipped.Add(uint64(st.Unchanged))
	cm.writeErrs.Add(uint64(st.WriteErrors))
	return res, st.Written, nil
}

// noteFastPath copies the solver's fast-path routing outcome into the
// interval stats and telemetry; a no-op interval (fast path disabled) leaves
// the counters untouched so the series only move when the feature is on.
func (st *IntervalStats) noteFastPath(res *core.Result, cm *controllerMetrics) {
	st.FastPathHits = res.FastPathHits
	st.FastPathFallbacks = res.FastPathFallbacks
	st.OptimalityGap = res.OptimalityGap
	if res.FastPathHits == 0 && res.FastPathFallbacks == 0 {
		return
	}
	cm.fastHits.Add(uint64(res.FastPathHits))
	cm.fastFallbacks.Add(uint64(res.FastPathFallbacks))
	cm.optimalityGap.Observe(res.OptimalityGap)
}

// OnLinkFailure invalidates cached tunnels and recomputes immediately — the
// fast failure reaction of §6.3.
func (c *Controller) OnLinkFailure(m *traffic.Matrix) (*core.Result, int, error) {
	c.Solver.Invalidate()
	return c.RunInterval(m)
}

// BuildConfigs groups the per-flow tunnel assignments of a TE result into
// per-instance configuration records. Flows that were rejected produce no
// entry (their instance keeps no pinned path and falls back to conventional
// routing). Each record's Paths are sorted by DstSite so the same assignment
// always serializes (and hashes) identically.
func BuildConfigs(topo *topology.Topology, m *traffic.Matrix, res *core.Result, version uint64) map[string]*InstanceConfig {
	configs := make(map[string]*InstanceConfig)
	// pathIdx[ins][dst] is the position of dst's entry in configs[ins].Paths,
	// replacing a linear scan over Paths per flow.
	pathIdx := make(map[string]map[uint32]int)
	// Tier ranks are computed lazily per pair and only when the matrix
	// carries tier bounds — the default path never touches them.
	tiered := m.Policies.HasTierBounds()
	var tierCache map[traffic.SitePair][]int
	if tiered {
		tierCache = make(map[traffic.SitePair][]int)
	}
	for i, tn := range res.FlowTunnel {
		if tn == nil {
			continue
		}
		f := &m.Flows[i]
		ins := topo.Endpoints[f.Src].Instance
		cfg := configs[ins]
		if cfg == nil {
			cfg = &InstanceConfig{Instance: ins, Version: version}
			configs[ins] = cfg
			pathIdx[ins] = make(map[uint32]int)
		}
		hops := make([]uint32, len(tn.Sites))
		for j, s := range tn.Sites {
			hops[j] = uint32(s)
		}
		var tier uint8
		if tiered {
			if _, bound := m.Policies.TierBound(f.App); bound {
				tier = pairTier(tierCache, topo, res, f.Pair, tn)
			}
		}
		dst := uint32(f.Pair.Dst)
		idx := pathIdx[ins]
		if pos, ok := idx[dst]; ok {
			cfg.Paths[pos].Hops = hops
			cfg.Paths[pos].Tier = tier
		} else {
			idx[dst] = len(cfg.Paths)
			cfg.Paths = append(cfg.Paths, PathEntry{DstSite: dst, Hops: hops, Tier: tier})
		}
	}
	for _, cfg := range configs {
		sort.Slice(cfg.Paths, func(a, b int) bool {
			return cfg.Paths[a].DstSite < cfg.Paths[b].DstSite
		})
	}
	return configs
}

// configHash fingerprints an InstanceConfig independently of its Version
// field, so a record whose paths did not move between intervals hashes the
// same and is not rewritten. Paths are hashed in their (sorted) stored
// order.
func configHash(cfg *InstanceConfig) uint64 {
	h := fnv.New64a()
	var buf [4]byte
	u32 := func(v uint32) {
		binary.LittleEndian.PutUint32(buf[:], v)
		h.Write(buf[:])
	}
	h.Write([]byte(cfg.Instance))
	u32(uint32(len(cfg.Paths)))
	for _, p := range cfg.Paths {
		u32(p.DstSite)
		u32(uint32(p.Tier))
		u32(uint32(len(p.Hops)))
		for _, hop := range p.Hops {
			u32(hop)
		}
	}
	return h.Sum64()
}

// pairTier resolves the tier rank of the tunnel within its pair's tunnel
// set, caching the per-pair ranking across the flows of one interval.
func pairTier(cache map[traffic.SitePair][]int, topo *topology.Topology, res *core.Result, pair traffic.SitePair, tn *topology.Tunnel) uint8 {
	tns := res.Tunnels[pair]
	tiers, ok := cache[pair]
	if !ok {
		tiers = core.TunnelTiers(tns, topo)
		cache[pair] = tiers
	}
	for i, t := range tns {
		if t == tn {
			if tiers[i] > 255 {
				return 255
			}
			return uint8(tiers[i])
		}
	}
	return 0
}
