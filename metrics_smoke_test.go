package megate

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestMetricsSmoke is the exporter's end-to-end gate (`make metrics-smoke`):
// it builds megate-controller, starts it with -telemetry-addr, waits for the
// first interval to complete, and scrapes /metrics, /metrics.json and
// /debug/pprof/ over real HTTP, asserting the core metric names are present.
func TestMetricsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the controller binary")
	}
	bin := filepath.Join(t.TempDir(), "megate-controller")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/megate-controller").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// A long interval and a 2-interval budget: the controller solves interval
	// 0 immediately, then idles on its ticker until the test kills it.
	cmd := exec.Command(bin,
		"-listen", "127.0.0.1:0",
		"-telemetry-addr", "127.0.0.1:0",
		"-endpoints-per-site", "1",
		"-interval", "1h",
		"-intervals", "2",
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	lines := make(chan string, 64)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		wg.Wait()
	})

	// Scan stdout for the exporter address and the first completed interval.
	var telemAddr string
	intervalDone := false
	deadline := time.After(30 * time.Second)
	for telemAddr == "" || !intervalDone {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatal("controller exited before serving telemetry")
			}
			if rest, found := strings.CutPrefix(line, "telemetry on http://"); found {
				telemAddr = strings.TrimSuffix(rest, "/metrics")
			}
			if strings.HasPrefix(line, "interval 0:") {
				intervalDone = true
			}
		case <-deadline:
			t.Fatalf("timed out waiting for controller startup (addr=%q interval=%v)", telemAddr, intervalDone)
		}
	}

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + telemAddr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer func() { _ = resp.Body.Close() }()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	metrics := get("/metrics")
	for _, want := range []string{
		// kvstore op latencies and counters, pre-registered zero-valued.
		"# TYPE megate_kvstore_server_op_seconds histogram",
		`megate_kvstore_server_ops_total{op="version"}`,
		"# TYPE megate_kvstore_client_op_seconds histogram",
		// solve-stage timings, populated by interval 0.
		`megate_controller_solve_stage_seconds_bucket{stage="sitemerge"`,
		`megate_controller_solve_stage_seconds_bucket{stage="maxsiteflow"`,
		`megate_controller_solve_stage_seconds_bucket{stage="fastssp"`,
		`megate_controller_solve_stage_seconds_bucket{stage="publish"`,
		"megate_controller_intervals_total 1",
		"megate_controller_configs_written_total",
		"megate_controller_configs_skipped_total",
		// agent poll/fallback counters, zero-valued until agents attach.
		"megate_agent_polls_total 0",
		"megate_agent_fallbacks_total 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full /metrics body:\n%s", metrics)
	}

	var samples []MetricsSample
	if err := json.Unmarshal([]byte(get("/metrics.json")), &samples); err != nil {
		t.Fatalf("/metrics.json does not parse: %v", err)
	}
	if len(samples) == 0 {
		t.Error("/metrics.json snapshot empty")
	}

	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Error("/debug/pprof/ index not served")
	}
}
