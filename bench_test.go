// Benchmarks regenerating the paper's tables and figures, one per artifact.
// Each reports shape metrics via b.ReportMetric alongside timing; the full
// printed tables come from cmd/megate-bench (or internal/bench directly).
package megate

import (
	"math"
	"testing"
	"time"

	"megate/internal/baselines"
	"megate/internal/controlplane"
	"megate/internal/core"
	"megate/internal/flowsim"
	"megate/internal/ssp"
	"megate/internal/stats"
	"megate/internal/topology"
	"megate/internal/traffic"
)

// benchWorkload pins offered load to a fraction of what the network can
// carry (capacity over a measured mean path length), with per-flow demands
// capped at 2% of the median link capacity — the same model internal/bench
// uses, so benches run in the paper's many-small-flows regime.
func benchWorkload(topo *topology.Topology, seed int64, loadFactor float64) *traffic.Matrix {
	totalCap := 0.0
	caps := make([]float64, 0, topo.NumLinks())
	for _, l := range topo.Links {
		totalCap += l.CapacityMbps
		caps = append(caps, l.CapacityMbps)
	}
	r := stats.NewRand(seed)
	hops, samples := 0, 0
	for i := 0; i < 50 && topo.NumSites() > 1; i++ {
		a := topology.SiteID(r.Intn(topo.NumSites()))
		b := topology.SiteID(r.Intn(topo.NumSites()))
		if a == b {
			continue
		}
		if links, _, ok := topo.ShortestPath(a, b, nil, nil); ok {
			hops += len(links)
			samples++
		}
	}
	pathLen := 1.0
	if samples > 0 && hops > samples {
		pathLen = float64(hops) / float64(samples)
	}
	mean := loadFactor * totalCap / pathLen / math.Max(float64(topo.NumEndpoints()), 1)
	if cap2 := 0.02 * stats.Percentile(caps, 50); mean > cap2 {
		mean = cap2
	}
	return traffic.Generate(topo, traffic.GenOptions{Seed: seed, MeanDemandMbps: mean})
}

func build(b *testing.B, name string, perSite int) *topology.Topology {
	b.Helper()
	topo := topology.Build(name)
	topology.AttachEndpointsExact(topo, perSite)
	return topo
}

// --- Figure 8: endpoint distribution fit ---

func BenchmarkFig8WeibullAttachAndFit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		topo := topology.Build("TWAN")
		topology.AttachEndpoints(topo, 1000, 0.7, 42)
		counts := topo.EndpointCountsBySite()
		xs := make([]float64, len(counts))
		for j, c := range counts {
			xs[j] = float64(c)
		}
		if _, err := stats.FitWeibull(xs); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 2: topology construction ---

func BenchmarkTab2BuildTopologies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, name := range TopologyNames() {
			topology.Build(name)
		}
	}
}

// --- Figure 9: TE computation time per scheme ---

func benchScheme(b *testing.B, scheme baselines.Scheme, topoName string, perSite int, load float64) {
	b.Helper()
	topo := build(b, topoName, perSite)
	m := benchWorkload(topo, 42, load)
	b.ResetTimer()
	var satisfied float64
	for i := 0; i < b.N; i++ {
		sol, err := scheme.Solve(topo, m)
		if err != nil {
			b.Fatal(err)
		}
		satisfied = sol.SatisfiedFraction()
	}
	b.ReportMetric(satisfied, "satisfied-frac")
	b.ReportMetric(float64(topo.NumEndpoints()), "endpoints")
}

func BenchmarkFig9MegaTEB4(b *testing.B) { benchScheme(b, &baselines.MegaTE{}, "B4*", 100, 0.5) }
func BenchmarkFig9MegaTEDeltacom(b *testing.B) {
	benchScheme(b, &baselines.MegaTE{}, "Deltacom*", 10, 0.5)
}
func BenchmarkFig9MegaTETWAN(b *testing.B) { benchScheme(b, &baselines.MegaTE{}, "TWAN", 100, 0.5) }
func BenchmarkFig9LPAllDeltacom(b *testing.B) {
	benchScheme(b, &baselines.LPAll{}, "Deltacom*", 10, 0.5)
}
func BenchmarkFig9NCFlowDeltacom(b *testing.B) {
	benchScheme(b, &baselines.NCFlow{}, "Deltacom*", 10, 0.5)
}
func BenchmarkFig9TEALDeltacom(b *testing.B) { benchScheme(b, &baselines.TEAL{}, "Deltacom*", 10, 0.5) }

// --- Figure 10: satisfied demand at binding load ---

func BenchmarkFig10MegaTEDeltacomBinding(b *testing.B) {
	benchScheme(b, &baselines.MegaTE{}, "Deltacom*", 10, 1.0)
}

func BenchmarkFig10LPAllDeltacomBinding(b *testing.B) {
	benchScheme(b, &baselines.LPAll{}, "Deltacom*", 10, 1.0)
}

// --- Figure 11: QoS-1 latency ---

func BenchmarkFig11QoS1Latency(b *testing.B) {
	topo := build(b, "Deltacom*", 10)
	m := benchWorkload(topo, 42, 1.0)
	mega := &baselines.MegaTE{Options: core.Options{SplitQoS: true}}
	b.ResetTimer()
	var lat float64
	for i := 0; i < b.N; i++ {
		sol, err := mega.Solve(topo, m)
		if err != nil {
			b.Fatal(err)
		}
		lat = baselines.MeanLatency(sol, m, traffic.Class1)
	}
	b.ReportMetric(lat, "qos1-ms")
}

// --- Figure 12: failures ---

func BenchmarkFig12FailureRecompute(b *testing.B) {
	topo := build(b, "Deltacom*", 10)
	m := benchWorkload(topo, 42, 1.0)
	scen := flowsim.FailureScenario{FailLinks: []topology.LinkID{0, 8}, TEInterval: 5 * time.Minute}
	b.ResetTimer()
	var eff float64
	for i := 0; i < b.N; i++ {
		out, err := flowsim.RunFailure(topo, m, &baselines.MegaTE{}, scen)
		if err != nil {
			b.Fatal(err)
		}
		eff = out.EffectiveSatisfied
	}
	b.ReportMetric(eff, "effective-satisfied")
}

// --- Figure 13: persistent-connection overhead ---

func BenchmarkFig13PersistentConnections(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := controlplane.PressureTest(200, 50*time.Millisecond, 300*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(m.HeapBytes)/float64(m.Connections), "heapB/conn")
	}
}

// --- Figure 14: cost models ---

func BenchmarkFig14CostModel(b *testing.B) {
	var cores, shards float64
	for i := 0; i < b.N; i++ {
		cores = controlplane.PaperTopDownCost.CoresFor(1_000_000)
		shards = float64(controlplane.PaperBottomUpCost.ShardsFor(1_000_000, 10*time.Second))
	}
	b.ReportMetric(cores, "topdown-cores@1M")
	b.ReportMetric(shards, "bottomup-shards@1M")
}

// --- Figures 15-17: production comparison ---

func BenchmarkFig15to17Production(b *testing.B) {
	topo := build(b, "TWAN", 4)
	m := traffic.Generate(topo, traffic.GenOptions{Seed: 42, Apps: traffic.ProductionApps, DemandScale: 10})
	b.ResetTimer()
	var latRed, costRed float64
	for i := 0; i < b.N; i++ {
		conv, err := flowsim.RunConventional(topo, m)
		if err != nil {
			b.Fatal(err)
		}
		mega, err := flowsim.RunMegaTE(topo, m)
		if err != nil {
			b.Fatal(err)
		}
		latRed = flowsim.LatencyReduction(conv["online-gaming"], mega["online-gaming"])
		costRed = flowsim.CostReduction(conv["bulk-transfer"], mega["bulk-transfer"])
	}
	b.ReportMetric(latRed*100, "gaming-lat-red-%")
	b.ReportMetric(costRed*100, "bulk-cost-red-%")
}

// --- Ablations ---

func BenchmarkAblationFastSSP(b *testing.B) {
	r := stats.NewRand(42)
	values := make([]float64, 100_000)
	total := 0.0
	for i := range values {
		values[i] = 0.5 + r.Float64()*20
		total += values[i]
	}
	capacity := total * 0.6
	solver := &ssp.FastSSP{EpsPrime: 0.1}
	b.ResetTimer()
	var fill float64
	for i := 0; i < b.N; i++ {
		sol := solver.Solve(values, capacity)
		fill = sol.Total / capacity
	}
	b.ReportMetric(fill, "fill-frac")
}

func BenchmarkAblationExactDP(b *testing.B) {
	r := stats.NewRand(42)
	values := make([]float64, 5_000)
	total := 0.0
	for i := range values {
		values[i] = 0.5 + r.Float64()*20
		total += values[i]
	}
	capacity := total * 0.6
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ssp.ExactDP(values, capacity, 1)
	}
}

func BenchmarkAblationContractionMegaTE(b *testing.B) {
	benchScheme(b, &baselines.MegaTE{}, "TWAN", 20, 0.8)
}

func BenchmarkAblationContractionLPAll(b *testing.B) {
	benchScheme(b, &baselines.LPAll{MaxFlows: 6000}, "TWAN", 20, 0.8)
}

func BenchmarkAblationQoSSplit(b *testing.B) {
	benchScheme(b, &baselines.MegaTE{Options: core.Options{SplitQoS: true}}, "Deltacom*", 10, 0.8)
}

func BenchmarkAblationNoResidualPass(b *testing.B) {
	benchScheme(b, &baselines.MegaTE{Options: core.Options{DisableResidualPass: true}}, "Deltacom*", 10, 1.0)
}

// --- Control-loop plumbing ---

func BenchmarkControlLoopInterval(b *testing.B) {
	topo := build(b, "B4*", 20)
	m := benchWorkload(topo, 42, 0.8)
	db := NewTEDatabase(2)
	ctrl := NewController(NewSolver(topo, SolverOptions{}), db)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ctrl.RunInterval(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIncrementalChurn compares a cold control loop against the
// incremental one on the workload the TE cadence actually sees: ~5% of
// demands perturbed between consecutive intervals. Reported configs/op is
// the number of per-instance records written per interval (delta
// publication drives it toward the churned subset).
func BenchmarkIncrementalChurn(b *testing.B) {
	for _, mode := range []struct {
		name        string
		incremental bool
	}{{"cold", false}, {"warm", true}} {
		b.Run(mode.name, func(b *testing.B) {
			topo := build(b, "B4*", 10)
			m := benchWorkload(topo, 42, 0.8)
			db := NewTEDatabase(2)
			ctrl := NewController(NewSolver(topo, SolverOptions{Incremental: mode.incremental}), db)
			if _, _, err := ctrl.RunInterval(m); err != nil {
				b.Fatal(err)
			}
			r := stats.NewRand(7)
			written := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				for j := range m.Flows {
					if r.Float64() < 0.05 {
						m.Flows[j].DemandMbps *= 0.8 + 0.4*r.Float64()
					}
				}
				b.StartTimer()
				_, n, err := ctrl.RunInterval(m)
				if err != nil {
					b.Fatal(err)
				}
				st := ctrl.LastStats()
				if !mode.incremental {
					n = st.Written + st.Unchanged // what a non-delta controller writes
				}
				written += n
			}
			b.ReportMetric(float64(written)/float64(b.N), "configs/op")
		})
	}
}

func BenchmarkAgentPoll(b *testing.B) {
	topo := build(b, "B4*", 5)
	m := benchWorkload(topo, 42, 0.5)
	db := NewTEDatabase(2)
	ctrl := NewController(NewSolver(topo, SolverOptions{}), db)
	if _, _, err := ctrl.RunInterval(m); err != nil {
		b.Fatal(err)
	}
	agent := NewAgent(topo.Endpoints[0].Instance, db, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := agent.Poll(); err != nil {
			b.Fatal(err)
		}
	}
}
