package megate

import (
	"testing"
	"time"

	"megate/internal/chaos"
	"megate/internal/controlplane"
)

// chaosScenario returns the canonical fault timeline, scaled down under
// -short so the verify.sh race pass stays fast: a flaky controller link
// early on, a controller restart on a window whose matrix matches the
// previous clean window (so recovered delta state is observable as zero
// writes), then a partition of a third of the fleet long enough to fire
// the staleness TTL.
func chaosScenario(t *testing.T, seed int64) chaos.Scenario {
	t.Helper()
	s := chaos.Scenario{
		Seed:        seed,
		Replicas:    2,
		PerSite:     1,
		Windows:     11,
		StaleAfter:  2,
		Timeout:     150 * time.Millisecond,
		FlakyFrom:   1,
		FlakyUntil:  3,
		RestartAt:   5,
		PartitionAt: 6,
		HealAt:      9,
	}
	if testing.Short() {
		s.Windows = 8
		s.FlakyFrom, s.FlakyUntil = 1, 2
		s.RestartAt = 3
		s.PartitionAt, s.HealAt = 4, 6
		s.Timeout = 100 * time.Millisecond
	}
	return s
}

// TestChaosControlLoop runs the full fault timeline and asserts the
// scenario invariants held: no torn config installed, TTL fallback during
// the partition, convergence within one poll round of heal, exact
// replica/agent/database agreement at quiesce.
func TestChaosControlLoop(t *testing.T) {
	res, err := chaos.Run(chaosScenario(t, 11))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Error(v)
	}
	if res.Fallbacks == 0 {
		t.Error("partition never fired the staleness TTL; the scenario exercised nothing")
	}
	if res.Recoveries != res.Fallbacks {
		t.Errorf("fallbacks=%d recoveries=%d; every degraded agent must recover by quiesce",
			res.Fallbacks, res.Recoveries)
	}
	if res.FinalVersion == 0 {
		t.Error("no interval ever published")
	}
	// The partition must actually have failed polls; a silent pass would
	// mean the fault injection never engaged.
	failed := 0
	for _, w := range res.Windows {
		failed += w.PollErrors
	}
	if failed == 0 {
		t.Error("no poll ever failed under the fault timeline")
	}
}

// TestChaosControllerRestartWritesOnlyDelta pins the recovery acceptance
// criterion inside the chaos run: the restarted controller's first
// interval writes exactly the records whose bytes changed — the restart is
// invisible in database write load.
func TestChaosControllerRestartWritesOnlyDelta(t *testing.T) {
	res, err := chaos.Run(chaosScenario(t, 23))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Error(v)
	}
	if !res.RestartRan {
		t.Fatal("scenario never restarted the controller")
	}
	if res.RestartRestored == 0 {
		t.Error("Recover() restored no records")
	}
	if res.RestartStats.Written != res.RestartExpectedWritten {
		t.Errorf("recovered controller wrote %d records, but only %d actually changed",
			res.RestartStats.Written, res.RestartExpectedWritten)
	}
	if res.RestartStats.Unchanged == 0 {
		t.Error("recovered controller saw nothing unchanged: delta state was not restored")
	}
}

// TestChaosDeterministic replays the same seed twice and demands identical
// window-level outcomes — the property that makes chaos failures
// debuggable.
func TestChaosDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("replay comparison runs the scenario twice")
	}
	run := func() *chaos.Result {
		res, err := chaos.Run(chaosScenario(t, 42))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.Violations) != 0 || len(b.Violations) != 0 {
		t.Fatalf("violations: %v / %v", a.Violations, b.Violations)
	}
	if a.FinalVersion != b.FinalVersion {
		t.Errorf("final version %d vs %d across replays", a.FinalVersion, b.FinalVersion)
	}
	if a.Fallbacks != b.Fallbacks || a.Recoveries != b.Recoveries {
		t.Errorf("fallbacks/recoveries %d/%d vs %d/%d across replays",
			a.Fallbacks, a.Recoveries, b.Fallbacks, b.Recoveries)
	}
	if len(a.Windows) != len(b.Windows) {
		t.Fatalf("window counts differ: %d vs %d", len(a.Windows), len(b.Windows))
	}
	for i := range a.Windows {
		wa, wb := a.Windows[i], b.Windows[i]
		if wa.Stats != wb.Stats || wa.Degraded != wb.Degraded {
			t.Errorf("window %d diverged across replays: %+v vs %+v", i, wa, wb)
		}
	}
}

// TestChaosTelemetrySnapshot checks the chaos run reports into the caller's
// registry: every window carries a snapshot, the convergence-lag histogram
// observes one sample per agent per fault window, and the shared registry
// aggregates the fleet's poll counters.
func TestChaosTelemetrySnapshot(t *testing.T) {
	reg := NewMetricsRegistry()
	s := chaosScenario(t, 7)
	s.Metrics = reg
	res, err := chaos.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Error(v)
	}
	for _, w := range res.Windows {
		if len(w.Metrics) == 0 {
			t.Errorf("window %d carries no telemetry snapshot", w.Window)
		}
	}
	last := res.Windows[len(res.Windows)-1]
	var lag *MetricsSample
	for i := range last.Metrics {
		if last.Metrics[i].Name == chaos.MetricConvergenceLag {
			lag = &last.Metrics[i]
		}
	}
	if lag == nil {
		t.Fatal("convergence lag histogram missing from final snapshot")
	}
	wantObs := uint64(res.Agents) * uint64(s.Windows)
	if lag.Count != wantObs {
		t.Errorf("convergence lag observations = %d, want %d (agents × windows)", lag.Count, wantObs)
	}
	if got := reg.Counter(controlplane.MetricAgentPolls).Value(); got == 0 {
		t.Error("fleet poll counter empty: agents did not share the scenario registry")
	}
	// The run must not have leaked into the process-wide default registry:
	// its convergence-lag histogram stays unobserved.
	if got := DefaultMetrics().Histogram(chaos.MetricConvergenceLag, nil).Count(); got != 0 {
		t.Errorf("default registry saw %d lag observations from an isolated run", got)
	}
}

// federationScenario is the canonical inter-domain partition timeline: two
// full domains exchange summaries for a few clean windows, the
// gateway-to-gateway links are cut long enough to fire the gateway TTL,
// then heal.
func federationScenario(t *testing.T, seed int64) chaos.FederationScenario {
	t.Helper()
	s := chaos.FederationScenario{
		Seed:        seed,
		Domains:     2,
		PerSite:     1,
		Windows:     9,
		StaleAfter:  2,
		Timeout:     150 * time.Millisecond,
		PartitionAt: 3,
		HealAt:      6,
	}
	if testing.Short() {
		s.Windows = 7
		s.PartitionAt, s.HealAt = 2, 5
		s.Timeout = 100 * time.Millisecond
	}
	return s
}

// TestChaosFederationPartition cuts the inter-domain gateway links mid-run
// and holds the federation to its §6.3 degradation contract: intra-domain
// TE keeps converging every window of the cut, the gateway TTL drops
// imported summaries and fed/ records so cross-domain flows fall back to
// conventional routing, and the heal reimports everything byte-identically.
func TestChaosFederationPartition(t *testing.T) {
	res, err := chaos.RunFederation(federationScenario(t, 29))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Error(v)
	}
	// Exactly one TTL firing per directed domain pair, or the partition
	// exercised nothing (0) or flapped (more).
	wantStale := uint64(res.Domains * (res.Domains - 1))
	if res.StaleFired != wantStale {
		t.Errorf("stale fallbacks = %d, want %d (one per directed pair)", res.StaleFired, wantStale)
	}
	if res.Imports == 0 {
		t.Error("no summary was ever imported; the federation exercised nothing")
	}
	boundary := 0
	for _, w := range res.Windows {
		boundary += w.BoundaryFlows
	}
	if boundary == 0 {
		t.Error("no boundary flow was ever folded into a solve")
	}
	for i, v := range res.FinalVersions {
		if v == 0 {
			t.Errorf("domain %d never published an interval", i)
		}
	}
}

// TestChaosFederationDeterministic replays the same federation seed twice
// and demands identical window-level outcomes.
func TestChaosFederationDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("replay comparison runs the scenario twice")
	}
	run := func() *chaos.FederationResult {
		res, err := chaos.RunFederation(federationScenario(t, 53))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.Violations) != 0 || len(b.Violations) != 0 {
		t.Fatalf("violations: %v / %v", a.Violations, b.Violations)
	}
	if a.StaleFired != b.StaleFired || a.Imports != b.Imports {
		t.Errorf("stale/imports %d/%d vs %d/%d across replays", a.StaleFired, a.Imports, b.StaleFired, b.Imports)
	}
	if len(a.Windows) != len(b.Windows) {
		t.Fatalf("window counts differ: %d vs %d", len(a.Windows), len(b.Windows))
	}
	for i := range a.Windows {
		wa, wb := a.Windows[i], b.Windows[i]
		if wa.ExchangeErrors != wb.ExchangeErrors || wa.StalePeers != wb.StalePeers ||
			wa.BoundaryFlows != wb.BoundaryFlows || wa.Converged != wb.Converged {
			t.Errorf("window %d diverged across replays: %+v vs %+v", i, wa, wb)
		}
	}
	for i := range a.FinalVersions {
		if a.FinalVersions[i] != b.FinalVersions[i] {
			t.Errorf("domain %d final version %d vs %d across replays", i, a.FinalVersions[i], b.FinalVersions[i])
		}
	}
}

// stormScenario is the canonical fleet-storm timeline: a cold boot under
// deliberately tight per-shard admission, a two-publish version-skew
// rollout, a partition cutting one faultnet group long enough to fire the
// staleness TTL, and a heal whose herd recovery must converge everyone.
func stormScenario(t *testing.T, seed int64) chaos.StormScenario {
	t.Helper()
	s := chaos.StormScenario{
		Seed:   seed,
		Agents: 200,
		Shards: 3,
		Groups: 4,
	}
	if testing.Short() {
		s.Agents = 120
	}
	return s
}

// TestChaosStormFleet runs the fleet storm against live shards with
// admission control on and holds it to the robustness acceptance gates:
// every phase converges, cold sync stays O(1) snapshots per agent, the
// partition fires the TTL for every cut agent, sheds happen (the admission
// is tight enough that the storm must hit it) and yet nobody wedges.
func TestChaosStormFleet(t *testing.T) {
	res, err := chaos.RunStorm(stormScenario(t, 19))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Error(v)
	}
	if res.Partitioned == 0 || res.Partitioned >= res.Agents {
		t.Fatalf("partition cut %d/%d agents; the storm exercised nothing", res.Partitioned, res.Agents)
	}
	if res.Wedged != 0 {
		t.Errorf("%d agents wedged", res.Wedged)
	}
	if res.Busy == 0 {
		t.Error("no poll was ever shed: admission control never engaged under the storm")
	}
	if res.Shed < res.Busy {
		t.Errorf("server shed %d < fleet busy %d; the BUSY accounting disagrees", res.Shed, res.Busy)
	}
	if res.TTLResyncs < uint64(res.Partitioned) {
		t.Errorf("only %d TTL resyncs for %d cut agents", res.TTLResyncs, res.Partitioned)
	}
	if len(res.Phases) == 0 {
		t.Fatal("no phases recorded")
	}
	heal := res.Phases[len(res.Phases)-1]
	if heal.Name != "heal" || heal.Converged != int64(res.Agents) {
		t.Errorf("heal phase %+v did not converge the whole fleet", heal)
	}
	if heal.LagP99 <= 0 {
		t.Error("herd-recovery p99 lag was never measured")
	}
}

// TestChaosStormDeterministic replays the same storm seed twice and demands
// identical outcomes on every replay-deterministic field (lag percentiles
// are wall-clock and excluded).
func TestChaosStormDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("replay comparison runs the storm twice")
	}
	run := func() *chaos.StormResult {
		res, err := chaos.RunStorm(stormScenario(t, 43))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.Violations) != 0 || len(b.Violations) != 0 {
		t.Fatalf("violations: %v / %v", a.Violations, b.Violations)
	}
	if a.FinalVersion != b.FinalVersion || a.Agents != b.Agents || a.Partitioned != b.Partitioned {
		t.Errorf("final/agents/partitioned %d/%d/%d vs %d/%d/%d across replays",
			a.FinalVersion, a.Agents, a.Partitioned, b.FinalVersion, b.Agents, b.Partitioned)
	}
	if a.Wedged != b.Wedged || a.SnapshotsMin != b.SnapshotsMin || a.SnapshotsMax != b.SnapshotsMax {
		t.Errorf("wedged/snapmin/snapmax %d/%d/%d vs %d/%d/%d across replays",
			a.Wedged, a.SnapshotsMin, a.SnapshotsMax, b.Wedged, b.SnapshotsMin, b.SnapshotsMax)
	}
	if len(a.Phases) != len(b.Phases) {
		t.Fatalf("phase counts differ: %d vs %d", len(a.Phases), len(b.Phases))
	}
	for i := range a.Phases {
		pa, pb := a.Phases[i], b.Phases[i]
		if pa.Name != pb.Name || pa.Target != pb.Target || pa.Expected != pb.Expected || pa.Converged != pb.Converged {
			t.Errorf("phase %d diverged across replays: %s target %d %d/%d vs %s target %d %d/%d",
				i, pa.Name, pa.Target, pa.Converged, pa.Expected, pb.Name, pb.Target, pb.Converged, pb.Expected)
		}
	}
}

// shardLossScenario is the canonical shard-loss timeline: the busiest
// shard blackholes early enough for the TTL to fire, rejoins, and the
// cluster then grows by one node post-heal so the migration also runs
// under the chaos harness.
func shardLossScenario(t *testing.T, seed int64) chaos.ShardLossScenario {
	t.Helper()
	s := chaos.ShardLossScenario{
		Seed:       seed,
		Nodes:      3,
		PerSite:    1,
		Windows:    9,
		StaleAfter: 2,
		Timeout:    150 * time.Millisecond,
		LoseAt:     2,
		RejoinAt:   5,
		GrowAt:     7,
	}
	if testing.Short() {
		s.Windows = 7
		s.LoseAt, s.RejoinAt = 1, 4
		s.GrowAt = 5
		s.Timeout = 100 * time.Millisecond
	}
	return s
}

// TestChaosShardLoss blackholes one TE-database shard mid-run and holds
// the sharded control loop to the §6.3 scoping invariants: surviving-shard
// agents converge every window, lost-shard agents degrade after the TTL
// and recover on rejoin, the post-heal growth migration moves keys, and
// quiesce ends with exact placement and version agreement.
func TestChaosShardLoss(t *testing.T) {
	res, err := chaos.RunShardLoss(shardLossScenario(t, 17))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Error(v)
	}
	if res.LostHomedAgents == 0 {
		t.Fatal("lost shard homed no agents; the scenario exercised nothing")
	}
	if res.Agents <= res.LostHomedAgents {
		t.Fatal("every agent was lost-homed; no surviving-shard convergence was checked")
	}
	if res.Fallbacks == 0 {
		t.Error("shard loss never fired the staleness TTL")
	}
	if res.Recoveries != res.Fallbacks {
		t.Errorf("fallbacks=%d recoveries=%d; every degraded agent must recover by quiesce",
			res.Fallbacks, res.Recoveries)
	}
	if res.MovedKeys == 0 {
		t.Error("growth migration moved no keys")
	}
	if res.FailedIntervals != 0 {
		t.Errorf("%d intervals failed; TolerateWriteErrors must carry the controller through the blackhole",
			res.FailedIntervals)
	}
	writeErrs := 0
	for _, w := range res.Windows {
		writeErrs += w.Stats.WriteErrors
	}
	if writeErrs == 0 {
		t.Error("no write errors tolerated; the blackhole never touched the controller's fan-out")
	}
	if res.FinalVersion == 0 {
		t.Error("no interval ever published")
	}
}

// TestChaosShardLossDeterministic replays the shard-loss seed twice and
// demands identical window-level outcomes.
func TestChaosShardLossDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("replay comparison runs the scenario twice")
	}
	run := func() *chaos.ShardLossResult {
		res, err := chaos.RunShardLoss(shardLossScenario(t, 31))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.Violations) != 0 || len(b.Violations) != 0 {
		t.Fatalf("violations: %v / %v", a.Violations, b.Violations)
	}
	if a.LostNode != b.LostNode || a.LostHomedAgents != b.LostHomedAgents {
		t.Errorf("lost shard %s/%d vs %s/%d across replays",
			a.LostNode, a.LostHomedAgents, b.LostNode, b.LostHomedAgents)
	}
	if a.FinalVersion != b.FinalVersion || a.MovedKeys != b.MovedKeys {
		t.Errorf("final version/moved %d/%d vs %d/%d across replays",
			a.FinalVersion, a.MovedKeys, b.FinalVersion, b.MovedKeys)
	}
	if a.Fallbacks != b.Fallbacks || a.Recoveries != b.Recoveries {
		t.Errorf("fallbacks/recoveries %d/%d vs %d/%d across replays",
			a.Fallbacks, a.Recoveries, b.Fallbacks, b.Recoveries)
	}
	for i := range a.Windows {
		if a.Windows[i].Stats != b.Windows[i].Stats || a.Windows[i].Degraded != b.Windows[i].Degraded {
			t.Errorf("window %d diverged across replays: %+v vs %+v", i, a.Windows[i], b.Windows[i])
		}
	}
}
