// Command megate-bench regenerates the tables and figures of the MegaTE
// paper's evaluation (§6–§7). Run with -list to see the experiment IDs, and
// -experiment all to reproduce everything.
//
// Sizes are scaled for small machines; -scale 2 roughly quadruples problem
// sizes and -scale 4 reaches the paper's million-endpoint runs (hours on a
// single core).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"megate/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment ID (see -list) or 'all'")
		scale      = flag.Float64("scale", 1, "size multiplier: 1 laptop, 4 paper-sized")
		seed       = flag.Int64("seed", 42, "random seed")
		list       = flag.Bool("list", false, "list experiment IDs and exit")
		msFlows    = flag.String("megascale-flows", "", "comma-separated flow counts overriding the ab-megascale sweep (e.g. 20000,50000)")
		flSizes    = flag.String("fleet-sizes", "", "comma-separated fleet sizes overriding the ab-fleet sweep (e.g. 10000,100000)")
		fpTol      = flag.Float64("fastpath-tol", 0, "certificate acceptance gap for the ab-incremental fast path (0 = solver default, 1%)")
	)
	flag.Parse()

	parseCounts := func(name, val string) []int {
		var counts []int
		if val == "" {
			return nil
		}
		for _, part := range strings.Split(val, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "bad %s entry %q\n", name, part)
				os.Exit(2)
			}
			counts = append(counts, n)
		}
		return counts
	}
	flowCounts := parseCounts("-megascale-flows", *msFlows)
	fleetSizes := parseCounts("-fleet-sizes", *flSizes)

	if *list {
		for _, e := range bench.Registry {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := &bench.Config{Out: os.Stdout, Scale: *scale, Seed: *seed, MegascaleFlows: flowCounts, FleetSizes: fleetSizes, FastPathTol: *fpTol}
	run := func(e bench.Experiment) {
		start := time.Now()
		if err := e.Run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if *experiment == "all" {
		for _, e := range bench.Registry {
			run(e)
		}
		return
	}
	e, ok := bench.Get(*experiment)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *experiment)
		os.Exit(2)
	}
	run(e)
}
