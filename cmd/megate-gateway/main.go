// Command megate-gateway runs one domain's federation gateway: it serves
// PULL requests from peer gateways with this domain's exported demand
// summary, and periodically pulls each peer in turn, publishing imported
// config records under fed/<peer>/ in the local TE database. After
// -stale-after consecutive failed exchanges with a peer, everything
// imported from it is dropped (cross-domain fallback to conventional
// routing, §6.3); the next successful exchange reimports in full.
//
// Example — two gateways federating two controller deployments:
//
//	megate-gateway -domain east -listen 127.0.0.1:7800 -peers west=127.0.0.1:7801 \
//	    -db 127.0.0.1:7700 -demand west:2:1:50;west:4:2:12.5
//	megate-gateway -domain west -listen 127.0.0.1:7801 -peers east=127.0.0.1:7800 \
//	    -db 127.0.0.1:7701 -demand east:1:1:30
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"megate"
	"megate/internal/controlplane"
	"megate/internal/federation"
	"megate/internal/kvstore"
	"megate/internal/traffic"
)

func main() {
	var (
		domain     = flag.String("domain", "", "local domain name (required)")
		listen     = flag.String("listen", "127.0.0.1:7800", "gateway listen address")
		peerList   = flag.String("peers", "", "comma-separated peer gateways as name=addr")
		dbAddr     = flag.String("db", "", "local TE database address for publishing imported fed/ records (empty = summaries only)")
		demandSpec = flag.String("demand", "", "static exported demand as ;-separated peer:dstsite:class:mbps tuples")
		interval   = flag.Duration("interval", 10*time.Second, "exchange period")
		staleAfter = flag.Int("stale-after", 3, "staleness TTL in consecutive failed exchanges")
		timeout    = flag.Duration("timeout", 2*time.Second, "per-exchange dial + I/O deadline")
		telemAddr  = flag.String("telemetry-addr", "", "serve /metrics, /metrics.json and /debug/pprof/ on this address (empty = disabled)")
	)
	flag.Parse()
	if *domain == "" {
		fmt.Fprintln(os.Stderr, "-domain is required")
		os.Exit(2)
	}

	if *telemAddr != "" {
		megate.RegisterCoreMetrics(nil)
		ts, err := megate.ServeMetrics(*telemAddr, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer ts.Close()
		fmt.Printf("telemetry on http://%s/metrics\n", ts.Addr())
	}

	gw := &federation.Gateway{
		Domain:     *domain,
		StaleAfter: *staleAfter,
		Timeout:    *timeout,
		Metrics:    megate.DefaultMetrics(),
	}
	if *dbAddr != "" {
		gw.Store = controlplane.ClientAdapter{Client: &kvstore.Client{Addr: *dbAddr, Timeout: *timeout}}
	}

	var peers []string
	if *peerList != "" {
		for _, part := range strings.Split(*peerList, ",") {
			name, addr, ok := strings.Cut(strings.TrimSpace(part), "=")
			if !ok || name == "" || addr == "" {
				fmt.Fprintf(os.Stderr, "bad peer %q (want name=addr)\n", part)
				os.Exit(2)
			}
			gw.AddPeer(name, addr)
			peers = append(peers, name)
		}
	}
	demand, err := parseDemand(*demandSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for peer, entries := range demand {
		gw.SetLocalDemand(peer, entries)
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer gw.Close()
	gw.Start(l)
	fmt.Printf("federation gateway %q serving on %s (%d peers, epoch %d)\n",
		*domain, l.Addr(), len(peers), gw.Epoch())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	for {
		for _, peer := range peers {
			if err := gw.Exchange(peer); err != nil {
				status := "unreachable"
				if gw.PeerStale(peer) {
					status = "STALE (imports dropped)"
				}
				fmt.Printf("exchange %s: %s: %v\n", peer, status, err)
				continue
			}
			fmt.Printf("exchange %s: ok, imported epoch %d, %d summary entries\n",
				peer, gw.ImportedEpoch(peer), len(gw.ImportedSummaries()[peer]))
		}
		select {
		case <-tick.C:
		case <-stop:
			fmt.Println("interrupted")
			return
		}
	}
}

// parseDemand parses ;-separated peer:dstsite:class:mbps tuples into
// per-peer summary entries, preserving tuple order per peer.
func parseDemand(spec string) (map[string][]federation.SummaryEntry, error) {
	out := make(map[string][]federation.SummaryEntry)
	if spec == "" {
		return out, nil
	}
	for _, part := range strings.Split(spec, ";") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) != 4 {
			return nil, fmt.Errorf("bad demand tuple %q (want peer:dstsite:class:mbps)", part)
		}
		site, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad dstsite in %q: %v", part, err)
		}
		class, err := strconv.Atoi(fields[2])
		if err != nil || class < int(traffic.Class1) || class > int(traffic.Class3) {
			return nil, fmt.Errorf("bad class in %q (want 1..3)", part)
		}
		mbps, err := strconv.ParseFloat(fields[3], 64)
		if err != nil || mbps < 0 {
			return nil, fmt.Errorf("bad mbps in %q", part)
		}
		out[fields[0]] = append(out[fields[0]], federation.SummaryEntry{
			DstSite: uint32(site), Class: uint8(class), Mbps: mbps,
		})
	}
	return out, nil
}
