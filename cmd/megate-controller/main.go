// Command megate-controller runs MegaTE's control plane: it serves the TE
// database on a TCP listener and executes TE intervals — solve, write
// per-instance configurations, publish a new version — until stopped or the
// interval budget is exhausted. Endpoint agents (megate-agent) poll the same
// listener.
//
// Example:
//
//	megate-controller -listen 127.0.0.1:7700 -topology B4* -interval 5s -intervals 10
//
// With -cluster N it instead serves N database nodes on consecutive ports
// starting at -listen and routes each record to its owning shard by
// consistent hashing (agents then poll with megate-agent -cluster):
//
//	megate-controller -listen 127.0.0.1:7700 -cluster 3 -intervals 10
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"megate"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:7700", "TE database listen address")
		topoName  = flag.String("topology", "B4*", "topology name")
		perSite   = flag.Int("endpoints-per-site", 10, "endpoints per site")
		mean      = flag.Float64("mean-demand", 50, "mean per-flow demand in Mbps")
		seed      = flag.Int64("seed", 1, "random seed")
		interval  = flag.Duration("interval", 10*time.Second, "TE interval (paper: 5m)")
		intervals = flag.Int("intervals", 0, "stop after N intervals (0 = run until interrupted)")
		shards    = flag.Int("shards", 2, "TE database shards (in-process store stripes)")
		clusterN  = flag.Int("cluster", 0, "serve N sharded TE database nodes on consecutive ports after -listen and route records by consistent hashing (0 = single database)")
		qos       = flag.Bool("qos", true, "allocate QoS classes sequentially")
		deltaLog  = flag.Int("delta-log", 0, "retain a delta journal of N published versions so agents can sync by snapshot+delta (0 = disabled)")
		telemAddr = flag.String("telemetry-addr", "", "serve /metrics, /metrics.json and /debug/pprof/ on this address (empty = disabled)")
	)
	flag.Parse()

	if *telemAddr != "" {
		megate.RegisterCoreMetrics(nil)
		ts, err := megate.ServeMetrics(*telemAddr, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer ts.Close()
		fmt.Printf("telemetry on http://%s/metrics\n", ts.Addr())
	}

	topo := megate.BuildTopology(*topoName)
	megate.AttachEndpointsExact(topo, *perSite)
	trace := megate.GenerateTrace(topo, 24, megate.TrafficOptions{Seed: *seed, MeanDemandMbps: *mean})

	solver := megate.NewSolver(topo, megate.SolverOptions{SplitQoS: *qos})
	var ctrl *megate.Controller
	var queries func() uint64
	if *clusterN > 0 {
		// Sharded deployment: N database nodes on consecutive ports, records
		// routed to their owning shard by consistent hashing. Point agents at
		// every address with -cluster: megate-agent -cluster -db a1,a2,...
		host, portStr, err := net.SplitHostPort(*listen)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		port, err := strconv.Atoi(portStr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		var addrs []string
		var dbs []*megate.TEDatabase
		for i := 0; i < *clusterN; i++ {
			nodeAddr := net.JoinHostPort(host, strconv.Itoa(port+i))
			if port == 0 {
				nodeAddr = net.JoinHostPort(host, "0")
			}
			l, err := net.Listen("tcp", nodeAddr)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			db := megate.NewTEDatabase(*shards)
			if *deltaLog > 0 {
				db.EnableDeltaLog(*deltaLog)
			}
			srv := megate.ServeTEDatabase(l, db)
			defer srv.Close()
			addrs = append(addrs, srv.Addr())
			dbs = append(dbs, db)
		}
		cc, err := megate.NewClusterClient(addrs)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer cc.Close()
		fmt.Printf("sharded TE database serving on %s (%d nodes)\n", strings.Join(addrs, ","), *clusterN)
		ctrl = megate.NewClusterController(solver, cc)
		queries = func() uint64 {
			var q uint64
			for _, db := range dbs {
				q += db.Queries()
			}
			return q
		}
	} else {
		db := megate.NewTEDatabase(*shards)
		if *deltaLog > 0 {
			db.EnableDeltaLog(*deltaLog)
		}
		l, err := net.Listen("tcp", *listen)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		srv := megate.ServeTEDatabase(l, db)
		defer srv.Close()
		fmt.Printf("TE database serving on %s (%d shards)\n", srv.Addr(), *shards)
		ctrl = megate.NewController(solver, db)
		queries = db.Queries
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	tick := time.NewTicker(*interval)
	defer tick.Stop()

	for i := 0; ; i++ {
		m := trace.Intervals[i%len(trace.Intervals)]
		start := time.Now()
		res, n, err := ctrl.RunInterval(m)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("interval %d: version %d, %d instance configs, satisfied %.2f%%, solved in %v (queries so far: %d)\n",
			i, ctrl.Version(), n, res.SatisfiedFraction()*100,
			time.Since(start).Round(time.Millisecond), queries())
		if *intervals > 0 && i+1 >= *intervals {
			return
		}
		select {
		case <-tick.C:
		case <-stop:
			fmt.Println("interrupted")
			return
		}
	}
}
