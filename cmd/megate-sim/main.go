// Command megate-sim runs a flow-level simulation of a day of TE intervals
// under a chosen scheme, optionally failing links mid-day — the §6.3
// operational scenario from the shell.
//
// Example: fail the two first links at interval 8, restore at 16:
//
//	megate-sim -topology Deltacom* -intervals 24 -scheme MegaTE -fail 0,2 -fail-at 8 -restore-at 16
//
// With -chaos it instead runs the live control loop (controller, replicated
// TE database servers, agent fleet) under a scripted fault timeline and
// reports the degradation invariants:
//
//	megate-sim -chaos -seed 11 -chaos-windows 10 -chaos-partition-at 5 -chaos-heal-at 8
//
// With -chaos-shardloss it runs the control loop over the sharded
// (consistent-hash partitioned) database instead, blackholes the busiest
// shard mid-run, rejoins it, and finishes with a live resharding step:
//
//	megate-sim -chaos-shardloss -seed 17 -chaos-shards 3 -chaos-lose-at 2 -chaos-rejoin-at 5 -chaos-grow-at 7
//
// With -fleet it runs the fleet storm: an event-loop simulator drives a
// large agent fleet (timer wheel, worker pool — no goroutine-per-agent)
// against a live sharded database with per-shard admission control, through
// cold boot, a version-skew rollout, a partition, and the herd recovery
// after heal:
//
//	megate-sim -fleet -fleet-agents 10000 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"megate"
	"megate/internal/baselines"
	"megate/internal/chaos"
	"megate/internal/flowsim"
	"megate/internal/kvstore"
	"megate/internal/topology"
)

func main() {
	var (
		topoName  = flag.String("topology", "B4*", "topology name")
		perSite   = flag.Int("endpoints-per-site", 10, "endpoints per site")
		intervals = flag.Int("intervals", 12, "TE intervals in the trace")
		scheme    = flag.String("scheme", "MegaTE", "scheme: MegaTE, LP-all, NCFlow, TEAL")
		mean      = flag.Float64("mean-demand", 200, "mean per-flow demand in Mbps")
		seed      = flag.Int64("seed", 1, "random seed")
		failList  = flag.String("fail", "", "comma-separated link IDs to fail")
		failAt    = flag.Int("fail-at", -1, "interval at which the links fail")
		restoreAt = flag.Int("restore-at", -1, "interval at which the links recover")
		teIvl     = flag.Duration("te-interval", 5*time.Minute, "simulated TE interval length")

		chaosRun      = flag.Bool("chaos", false, "run the fault-injection control-loop scenario instead of the flow simulation")
		chaosShard    = flag.Bool("chaos-shardloss", false, "run the sharded-database shard-loss scenario instead of the flow simulation")
		chaosShards   = flag.Int("chaos-shards", 3, "shard count for -chaos-shardloss")
		chaosLoseAt   = flag.Int("chaos-lose-at", 2, "window blackholing the busiest shard (-chaos-shardloss)")
		chaosRejoinAt = flag.Int("chaos-rejoin-at", 5, "window healing the lost shard (-chaos-shardloss)")
		chaosGrowAt   = flag.Int("chaos-grow-at", 7, "post-heal window adding a fresh shard with live resharding, 0 = never (-chaos-shardloss)")
		chaosReplicas = flag.Int("chaos-replicas", 2, "TE database replica count")
		chaosWindows  = flag.Int("chaos-windows", 10, "TE windows in the chaos run")
		chaosStale    = flag.Int("chaos-stale-after", 2, "agent staleness TTL in failed polls")
		chaosTimeout  = flag.Duration("chaos-timeout", 150*time.Millisecond, "per-operation client deadline")
		chaosPartAt   = flag.Int("chaos-partition-at", 5, "window partitioning every third agent from the database")
		chaosHealAt   = flag.Int("chaos-heal-at", 8, "window healing the partition")
		chaosFlakyTo  = flag.Int("chaos-flaky-until", 3, "controller link injects resets/partial writes in windows [1, this)")
		chaosRestart  = flag.Int("chaos-restart-at", 0, "window before which the controller restarts and recovers (0 = never)")
		chaosMetrics  = flag.Bool("chaos-metrics", true, "print the telemetry registry snapshot after each chaos window")

		domains   = flag.Int("domains", 1, "federated TE domains; >1 runs the multi-domain federation scenario (gateways, summary exchange, partition + heal) instead of the flow simulation")
		fedPartAt = flag.Int("fed-partition-at", 3, "window cutting every gateway-to-gateway link (-domains)")
		fedHealAt = flag.Int("fed-heal-at", 6, "window healing the inter-domain partition (-domains)")

		fleetRun     = flag.Bool("fleet", false, "run the fleet storm scenario: cold boot, rollout, partition, herd recovery against a live sharded database")
		fleetAgents  = flag.Int("fleet-agents", 10000, "fleet size for -fleet")
		fleetShards  = flag.Int("fleet-shards", 8, "TE-database shard count for -fleet")
		fleetWorkers = flag.Int("fleet-workers", 128, "fleet network worker pool size")
		fleetPoll    = flag.Duration("fleet-poll", 500*time.Millisecond, "steady-state per-agent poll interval")
		fleetTimeout = flag.Duration("fleet-converge", 2*time.Minute, "per-phase convergence budget; overrunning it is a violation")
		fleetNoAdmit = flag.Bool("fleet-no-admission", false, "disable per-shard admission control (the bench control arm)")
		telemAddr    = flag.String("telemetry-addr", "", "serve /metrics, /metrics.json and /debug/pprof/ on this address (empty = disabled)")
	)
	flag.Parse()

	if *telemAddr != "" {
		megate.RegisterCoreMetrics(nil)
		ts, err := megate.ServeMetrics(*telemAddr, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer ts.Close()
		fmt.Printf("telemetry on http://%s/metrics\n", ts.Addr())
	}

	if *fleetRun {
		os.Exit(runFleetStorm(chaos.StormScenario{
			Seed:             *seed,
			Agents:           *fleetAgents,
			Shards:           *fleetShards,
			Groups:           64,
			PartitionGroups:  1,
			Workers:          *fleetWorkers,
			PollInterval:     *fleetPoll,
			Tick:             5 * time.Millisecond,
			Timeout:          100 * time.Millisecond,
			MaxBackoff:       2 * *fleetPoll,
			StaleAfter:       8,
			RolloutPublishes: 1,
			// An explicit one-interval hold replaces the chaos-test TTL
			// guarantee, which is quadratic in fleet size.
			PartitionHold:   *fleetPoll,
			Admission:       kvstore.Admission{MaxInflight: 4, MaxQueue: 8, RetryAfter: 25 * time.Millisecond},
			NoAdmission:     *fleetNoAdmit,
			ServiceDelay:    500 * time.Microsecond,
			ConvergeTimeout: *fleetTimeout,
			Metrics:         megate.DefaultMetrics(),
		}))
	}

	if *domains > 1 {
		os.Exit(runFederation(chaos.FederationScenario{
			Domains:     *domains,
			Seed:        *seed,
			PerSite:     1,
			Windows:     *chaosWindows,
			StaleAfter:  *chaosStale,
			Timeout:     *chaosTimeout,
			PartitionAt: *fedPartAt,
			HealAt:      *fedHealAt,
			Metrics:     megate.DefaultMetrics(),
		}))
	}

	if *chaosShard {
		os.Exit(runShardLoss(chaos.ShardLossScenario{
			Seed:       *seed,
			Nodes:      *chaosShards,
			PerSite:    1,
			Windows:    *chaosWindows,
			StaleAfter: *chaosStale,
			Timeout:    *chaosTimeout,
			LoseAt:     *chaosLoseAt,
			RejoinAt:   *chaosRejoinAt,
			GrowAt:     *chaosGrowAt,
			Metrics:    megate.DefaultMetrics(),
		}))
	}

	if *chaosRun {
		os.Exit(runChaos(chaos.Scenario{
			Seed:        *seed,
			Replicas:    *chaosReplicas,
			PerSite:     1,
			Windows:     *chaosWindows,
			StaleAfter:  *chaosStale,
			Timeout:     *chaosTimeout,
			PartitionAt: *chaosPartAt,
			HealAt:      *chaosHealAt,
			FlakyFrom:   1,
			FlakyUntil:  *chaosFlakyTo,
			RestartAt:   *chaosRestart,
			// The chaos run reports into the process registry so an attached
			// -telemetry-addr exporter sees it live.
			Metrics: megate.DefaultMetrics(),
		}, *chaosMetrics))
	}

	topo := megate.BuildTopology(*topoName)
	megate.AttachEndpointsExact(topo, *perSite)
	trace := megate.GenerateTrace(topo, *intervals, megate.TrafficOptions{Seed: *seed, MeanDemandMbps: *mean})

	var sch baselines.Scheme
	for _, s := range megate.Schemes() {
		if strings.EqualFold(s.Name(), *scheme) {
			sch = s
		}
	}
	if sch == nil {
		fmt.Fprintf(os.Stderr, "unknown scheme %q\n", *scheme)
		os.Exit(2)
	}

	var events []flowsim.Event
	if *failList != "" && *failAt >= 0 {
		var links []topology.LinkID
		for _, part := range strings.Split(*failList, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || id < 0 || id >= topo.NumLinks() {
				fmt.Fprintf(os.Stderr, "bad link id %q\n", part)
				os.Exit(2)
			}
			links = append(links, topology.LinkID(id))
		}
		events = append(events, flowsim.Event{Interval: *failAt, Fail: links})
		if *restoreAt > *failAt {
			events = append(events, flowsim.Event{Interval: *restoreAt, Restore: links})
		}
	}

	sim := &flowsim.Simulation{
		Topo: topo, Trace: trace, Scheme: sch,
		TEInterval: *teIvl, Events: events,
	}
	records, err := sim.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("%-8s %-12s %-10s %-10s %-10s %-9s %s\n",
		"interval", "offered-Gbps", "satisfied", "effective", "qos1-ms", "recompute", "links-down")
	for _, r := range records {
		fmt.Printf("%-8d %-12.1f %-10.4f %-10.4f %-10.2f %-9s %d\n",
			r.Interval, r.OfferedMbps/1000, r.SatisfiedFraction, r.EffectiveSatisfied,
			r.QoS1Latency, r.Recompute.Round(time.Millisecond), r.FailedLinks)
	}
}

// runChaos executes the fault-injection scenario and prints the per-window
// outcome (with each window's telemetry snapshot when printMetrics is set);
// the exit code is non-zero when any invariant was violated.
func runChaos(s chaos.Scenario, printMetrics bool) int {
	res, err := chaos.Run(s)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("%-7s %-8s %-8s %-8s %-9s %-9s %-9s %-9s %-7s %s\n",
		"window", "matrix", "written", "deleted", "unchanged", "poll-errs", "degraded", "converged", "max-lag", "interval")
	for _, w := range res.Windows {
		status := "ok"
		if w.IntervalErr != "" {
			status = "FAILED"
		}
		fmt.Printf("%-7d %-8s %-8d %-8d %-9d %-9d %-9d %-9d %-7d %s\n",
			w.Window, w.Matrix, w.Stats.Written, w.Stats.Deleted, w.Stats.Unchanged,
			w.PollErrors, w.Degraded, w.Converged, w.MaxLag, status)
	}
	if printMetrics {
		for _, w := range res.Windows {
			fmt.Printf("window %d telemetry:\n", w.Window)
			printSnapshot(w.Metrics)
		}
	}
	fmt.Printf("agents=%d final-version=%d failed-intervals=%d fallbacks=%d recoveries=%d\n",
		res.Agents, res.FinalVersion, res.FailedIntervals, res.Fallbacks, res.Recoveries)
	if res.RestartRan {
		fmt.Printf("restart: restored=%d written=%d expected-written=%d unchanged=%d\n",
			res.RestartRestored, res.RestartStats.Written, res.RestartExpectedWritten, res.RestartStats.Unchanged)
	}
	if len(res.Violations) > 0 {
		fmt.Fprintf(os.Stderr, "%d invariant violations:\n", len(res.Violations))
		for _, v := range res.Violations {
			fmt.Fprintln(os.Stderr, "  "+v)
		}
		return 1
	}
	fmt.Println("all invariants held")
	return 0
}

// runShardLoss executes the sharded-database scenario and prints the
// per-window outcome; the exit code is non-zero when any invariant was
// violated.
func runShardLoss(s chaos.ShardLossScenario) int {
	res, err := chaos.RunShardLoss(s)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("%-7s %-8s %-8s %-10s %-9s %-9s %-9s %s\n",
		"window", "written", "deleted", "write-errs", "poll-errs", "degraded", "converged", "interval")
	for _, w := range res.Windows {
		status := "ok"
		if w.IntervalErr != "" {
			status = "FAILED"
		}
		fmt.Printf("%-7d %-8d %-8d %-10d %-9d %-9d %-9d %s\n",
			w.Window, w.Stats.Written, w.Stats.Deleted, w.Stats.WriteErrors,
			w.PollErrors, w.Degraded, w.Converged, status)
	}
	fmt.Printf("agents=%d lost-node=%s lost-homed=%d moved-keys=%d final-version=%d failed-intervals=%d fallbacks=%d recoveries=%d\n",
		res.Agents, res.LostNode, res.LostHomedAgents, res.MovedKeys,
		res.FinalVersion, res.FailedIntervals, res.Fallbacks, res.Recoveries)
	if len(res.Violations) > 0 {
		fmt.Fprintf(os.Stderr, "%d invariant violations:\n", len(res.Violations))
		for _, v := range res.Violations {
			fmt.Fprintln(os.Stderr, "  "+v)
		}
		return 1
	}
	fmt.Println("all invariants held")
	return 0
}

// runFederation executes the multi-domain federation scenario and prints
// the per-window outcome; the exit code is non-zero when any invariant was
// violated.
func runFederation(s chaos.FederationScenario) int {
	res, err := chaos.RunFederation(s)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("%-7s %-10s %-12s %-15s %s\n",
		"window", "exch-errs", "stale-peers", "boundary-flows", "converged")
	for _, w := range res.Windows {
		fmt.Printf("%-7d %-10d %-12d %-15d %d/%d\n",
			w.Window, w.ExchangeErrors, w.StalePeers, w.BoundaryFlows, w.Converged, res.Agents)
	}
	fmt.Printf("domains=%d agents=%d stale-fallbacks=%d imports=%d final-versions=%v\n",
		res.Domains, res.Agents, res.StaleFired, res.Imports, res.FinalVersions)
	if len(res.Violations) > 0 {
		fmt.Fprintf(os.Stderr, "%d invariant violations:\n", len(res.Violations))
		for _, v := range res.Violations {
			fmt.Fprintln(os.Stderr, "  "+v)
		}
		return 1
	}
	fmt.Println("all invariants held")
	return 0
}

// runFleetStorm executes the fleet storm and prints the per-phase outcome
// (convergence counts, lag percentiles, sync traffic); the exit code is
// non-zero when any invariant was violated.
func runFleetStorm(s chaos.StormScenario) int {
	res, err := chaos.RunStorm(s)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("%-10s %-7s %-9s %-9s %-10s %-10s %-9s %-9s %-7s %s\n",
		"phase", "target", "expected", "converged", "lag-p50", "lag-p99", "snapshots", "deltas", "busy", "errors")
	for _, ph := range res.Phases {
		fmt.Printf("%-10s %-7d %-9d %-9d %-10v %-10v %-9d %-9d %-7d %d\n",
			ph.Name, ph.Target, ph.Expected, ph.Converged,
			ph.LagP50.Round(time.Millisecond), ph.LagP99.Round(time.Millisecond),
			ph.Stats.Snapshots, ph.Stats.DeltaPolls, ph.Stats.Busy, ph.Stats.Errors)
	}
	fmt.Printf("agents=%d partitioned=%d final-version=%d snapshots-per-agent=[%d,%d] ttl-resyncs=%d busy=%d shed=%d wedged=%d\n",
		res.Agents, res.Partitioned, res.FinalVersion, res.SnapshotsMin, res.SnapshotsMax,
		res.TTLResyncs, res.Busy, res.Shed, res.Wedged)
	if len(res.Violations) > 0 {
		fmt.Fprintf(os.Stderr, "%d invariant violations:\n", len(res.Violations))
		for _, v := range res.Violations {
			fmt.Fprintln(os.Stderr, "  "+v)
		}
		return 1
	}
	fmt.Println("all invariants held")
	return 0
}

// printSnapshot renders a registry snapshot compactly: counters and gauges
// as name=value, histograms as count/sum/p99, zero-valued series elided.
func printSnapshot(samples []megate.MetricsSample) {
	for _, s := range samples {
		switch {
		case len(s.Bucket) > 0:
			if s.Count == 0 {
				continue
			}
			fmt.Printf("  %s count=%d sum=%.6g p99=%.6g\n", s.Series(), s.Count, s.Sum, s.Quantile(0.99))
		case s.Value != 0:
			fmt.Printf("  %s %.6g\n", s.Series(), s.Value)
		}
	}
}
