// Command megate-sim runs a flow-level simulation of a day of TE intervals
// under a chosen scheme, optionally failing links mid-day — the §6.3
// operational scenario from the shell.
//
// Example: fail the two first links at interval 8, restore at 16:
//
//	megate-sim -topology Deltacom* -intervals 24 -scheme MegaTE -fail 0,2 -fail-at 8 -restore-at 16
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"megate"
	"megate/internal/baselines"
	"megate/internal/flowsim"
	"megate/internal/topology"
)

func main() {
	var (
		topoName  = flag.String("topology", "B4*", "topology name")
		perSite   = flag.Int("endpoints-per-site", 10, "endpoints per site")
		intervals = flag.Int("intervals", 12, "TE intervals in the trace")
		scheme    = flag.String("scheme", "MegaTE", "scheme: MegaTE, LP-all, NCFlow, TEAL")
		mean      = flag.Float64("mean-demand", 200, "mean per-flow demand in Mbps")
		seed      = flag.Int64("seed", 1, "random seed")
		failList  = flag.String("fail", "", "comma-separated link IDs to fail")
		failAt    = flag.Int("fail-at", -1, "interval at which the links fail")
		restoreAt = flag.Int("restore-at", -1, "interval at which the links recover")
		teIvl     = flag.Duration("te-interval", 5*time.Minute, "simulated TE interval length")
	)
	flag.Parse()

	topo := megate.BuildTopology(*topoName)
	megate.AttachEndpointsExact(topo, *perSite)
	trace := megate.GenerateTrace(topo, *intervals, megate.TrafficOptions{Seed: *seed, MeanDemandMbps: *mean})

	var sch baselines.Scheme
	for _, s := range megate.Schemes() {
		if strings.EqualFold(s.Name(), *scheme) {
			sch = s
		}
	}
	if sch == nil {
		fmt.Fprintf(os.Stderr, "unknown scheme %q\n", *scheme)
		os.Exit(2)
	}

	var events []flowsim.Event
	if *failList != "" && *failAt >= 0 {
		var links []topology.LinkID
		for _, part := range strings.Split(*failList, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || id < 0 || id >= topo.NumLinks() {
				fmt.Fprintf(os.Stderr, "bad link id %q\n", part)
				os.Exit(2)
			}
			links = append(links, topology.LinkID(id))
		}
		events = append(events, flowsim.Event{Interval: *failAt, Fail: links})
		if *restoreAt > *failAt {
			events = append(events, flowsim.Event{Interval: *restoreAt, Restore: links})
		}
	}

	sim := &flowsim.Simulation{
		Topo: topo, Trace: trace, Scheme: sch,
		TEInterval: *teIvl, Events: events,
	}
	records, err := sim.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("%-8s %-12s %-10s %-10s %-10s %-9s %s\n",
		"interval", "offered-Gbps", "satisfied", "effective", "qos1-ms", "recompute", "links-down")
	for _, r := range records {
		fmt.Printf("%-8d %-12.1f %-10.4f %-10.4f %-10.2f %-9s %d\n",
			r.Interval, r.OfferedMbps/1000, r.SatisfiedFraction, r.EffectiveSatisfied,
			r.QoS1Latency, r.Recompute.Round(time.Millisecond), r.FailedLinks)
	}
}
