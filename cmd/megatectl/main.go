// Command megatectl runs one MegaTE optimization over a built-in topology
// and a synthetic instance-level traffic matrix, printing the allocation
// summary — a quick way to exercise the two-stage solver from the shell.
//
// Example:
//
//	megatectl -topology Deltacom* -endpoints-per-site 10 -load 1.1 -qos
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"megate"
)

func main() {
	var (
		topoName  = flag.String("topology", "B4*", "topology: B4*, Deltacom*, Cogentco*, TWAN")
		gmlPath   = flag.String("gml", "", "load the topology from a Topology Zoo GML file instead")
		perSite   = flag.Int("endpoints-per-site", 10, "endpoints attached to every site")
		weibull   = flag.Bool("weibull", false, "attach endpoints Weibull-distributed instead of exact")
		mean      = flag.Float64("mean-demand", 50, "mean per-flow demand in Mbps")
		seed      = flag.Int64("seed", 1, "random seed")
		qos       = flag.Bool("qos", false, "allocate QoS classes sequentially")
		tunnels   = flag.Int("tunnels", 4, "tunnels per site pair")
		showPairs = flag.Int("show-pairs", 5, "print the N busiest site pairs")
	)
	flag.Parse()

	topo := loadTopology(*topoName, *gmlPath, *seed)
	if *weibull {
		megate.AttachEndpoints(topo, float64(*perSite), 0.7, *seed)
	} else {
		megate.AttachEndpointsExact(topo, *perSite)
	}
	m := megate.GenerateTraffic(topo, megate.TrafficOptions{Seed: *seed, MeanDemandMbps: *mean})

	solver := megate.NewSolver(topo, megate.SolverOptions{SplitQoS: *qos, TunnelsPerPair: *tunnels})
	start := time.Now()
	res, err := solver.Solve(m)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	elapsed := time.Since(start)

	fmt.Printf("topology   %s: %d sites, %d links, %d endpoints\n",
		topo.Name, topo.NumSites(), topo.NumLinks()/2, topo.NumEndpoints())
	fmt.Printf("traffic    %d flows, %.1f Gbps offered\n", m.NumFlows(), m.TotalDemandMbps()/1000)
	fmt.Printf("solve      %v total (MaxSiteFlow %v, MaxEndpointFlow %v)\n",
		elapsed.Round(time.Millisecond), res.SiteLPTime.Round(time.Millisecond), res.SSPTime.Round(time.Millisecond))
	fmt.Printf("satisfied  %.2f%% (%.1f of %.1f Gbps)\n",
		res.SatisfiedFraction()*100, res.SatisfiedMbps/1000, res.TotalMbps/1000)

	accepted, rejected := 0, 0
	for _, tn := range res.FlowTunnel {
		if tn != nil {
			accepted++
		} else {
			rejected++
		}
	}
	fmt.Printf("flows      %d pinned to a tunnel, %d rejected\n", accepted, rejected)

	if *showPairs > 0 {
		type pairLoad struct {
			name string
			mbps float64
		}
		byPair := map[string]float64{}
		for i, tn := range res.FlowTunnel {
			if tn == nil {
				continue
			}
			f := &m.Flows[i]
			key := fmt.Sprintf("%d->%d", f.Pair.Src, f.Pair.Dst)
			byPair[key] += f.DemandMbps
		}
		var pairs []pairLoad
		for k, v := range byPair {
			pairs = append(pairs, pairLoad{k, v})
		}
		sort.Slice(pairs, func(i, j int) bool { return pairs[i].mbps > pairs[j].mbps })
		fmt.Printf("\nbusiest site pairs:\n")
		for i, p := range pairs {
			if i >= *showPairs {
				break
			}
			fmt.Printf("  %-10s %8.1f Mbps\n", p.name, p.mbps)
		}
	}
}

// loadTopology builds a named topology or parses a Topology Zoo GML file.
func loadTopology(name, gmlPath string, seed int64) *megate.Topology {
	if gmlPath == "" {
		return megate.BuildTopology(name)
	}
	f, err := os.Open(gmlPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	topo, err := megate.ParseTopologyGML(f, name, seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return topo
}
