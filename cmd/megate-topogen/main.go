// Command megate-topogen generates the evaluation topologies and
// instance-level traffic matrices as JSON, for inspection or for feeding
// external tools.
//
// Example:
//
//	megate-topogen -topology Deltacom* -endpoints-per-site 10 -traffic > deltacom.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"megate"
)

type jsonSite struct {
	ID   int     `json:"id"`
	Name string  `json:"name"`
	X    float64 `json:"x,omitempty"`
	Y    float64 `json:"y,omitempty"`
}

type jsonLink struct {
	From         int     `json:"from"`
	To           int     `json:"to"`
	CapacityMbps float64 `json:"capacity_mbps"`
	LatencyMs    float64 `json:"latency_ms"`
	Availability float64 `json:"availability"`
	CostPerGbps  float64 `json:"cost_per_gbps"`
}

type jsonEndpoint struct {
	ID       int    `json:"id"`
	Site     int    `json:"site"`
	Instance string `json:"instance"`
}

type jsonFlow struct {
	ID         int     `json:"id"`
	Src        int     `json:"src"`
	Dst        int     `json:"dst"`
	SrcSite    int     `json:"src_site"`
	DstSite    int     `json:"dst_site"`
	DemandMbps float64 `json:"demand_mbps"`
	Class      int     `json:"qos_class"`
	App        string  `json:"app,omitempty"`
}

type output struct {
	Topology  string         `json:"topology"`
	Sites     []jsonSite     `json:"sites"`
	Links     []jsonLink     `json:"links"`
	Endpoints []jsonEndpoint `json:"endpoints"`
	Flows     []jsonFlow     `json:"flows,omitempty"`
}

func main() {
	var (
		topoName = flag.String("topology", "B4*", "topology name")
		gmlPath  = flag.String("gml", "", "load the topology from a Topology Zoo GML file instead")
		perSite  = flag.Int("endpoints-per-site", 10, "endpoints per site (exact)")
		weibull  = flag.Bool("weibull", false, "Weibull endpoint attachment instead of exact")
		genFlows = flag.Bool("traffic", false, "also generate a traffic matrix")
		mean     = flag.Float64("mean-demand", 50, "mean per-flow demand in Mbps")
		apps     = flag.Bool("apps", false, "tag flows with production application profiles")
		seed     = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	topo := loadTopology(*topoName, *gmlPath, *seed)
	if *weibull {
		megate.AttachEndpoints(topo, float64(*perSite), 0.7, *seed)
	} else {
		megate.AttachEndpointsExact(topo, *perSite)
	}

	out := output{Topology: topo.Name}
	for _, s := range topo.Sites {
		out.Sites = append(out.Sites, jsonSite{ID: int(s.ID), Name: s.Name, X: s.X, Y: s.Y})
	}
	for _, l := range topo.Links {
		out.Links = append(out.Links, jsonLink{
			From: int(l.From), To: int(l.To),
			CapacityMbps: l.CapacityMbps, LatencyMs: l.LatencyMs,
			Availability: l.Availability, CostPerGbps: l.CostPerGbps,
		})
	}
	for _, ep := range topo.Endpoints {
		out.Endpoints = append(out.Endpoints, jsonEndpoint{ID: int(ep.ID), Site: int(ep.Site), Instance: ep.Instance})
	}
	if *genFlows {
		opts := megate.TrafficOptions{Seed: *seed, MeanDemandMbps: *mean}
		if *apps {
			opts.Apps = megate.ProductionApps
		}
		m := megate.GenerateTraffic(topo, opts)
		for i := range m.Flows {
			f := &m.Flows[i]
			out.Flows = append(out.Flows, jsonFlow{
				ID: f.ID, Src: int(f.Src), Dst: int(f.Dst),
				SrcSite: int(f.Pair.Src), DstSite: int(f.Pair.Dst),
				DemandMbps: f.DemandMbps, Class: int(f.Class), App: f.App,
			})
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// loadTopology builds a named topology or parses a Topology Zoo GML file.
func loadTopology(name, gmlPath string, seed int64) *megate.Topology {
	if gmlPath == "" {
		return megate.BuildTopology(name)
	}
	f, err := os.Open(gmlPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	topo, err := megate.ParseTopologyGML(f, name, seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return topo
}
