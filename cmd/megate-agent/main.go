// Command megate-agent runs one (or a fleet of) MegaTE endpoint agents
// against a TE database: each agent polls the configuration version over a
// short connection — its poll time spread across the window — and pulls its
// instance's record when the version moves, exactly the bottom-up loop of
// §3.2.
//
// Example, 100 agents spread over a 10 s window:
//
//	megate-agent -db 127.0.0.1:7700 -instances ins-0-0,ins-1-0 -poll 10s
//	megate-agent -db 127.0.0.1:7700 -fleet 100 -poll 10s
//
// Passing several comma-separated addresses to -db makes each agent fail
// over across the replicas in order; with -cluster the addresses are
// instead treated as the shards of one consistent-hash partitioned
// database and each agent polls only the shard owning its config key.
// -stale-after N uninstalls pinned paths (conventional-routing fallback,
// §6.3) after N consecutive unreachable polls.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync"
	"time"

	"megate"
)

func main() {
	var (
		db         = flag.String("db", "127.0.0.1:7700", "TE database address(es), comma-separated for replica failover")
		clustered  = flag.Bool("cluster", false, "treat the -db addresses as one sharded cluster: each agent polls only the shard owning its config key")
		instances  = flag.String("instances", "", "comma-separated instance IDs to watch")
		fleet      = flag.Int("fleet", 0, "spawn N synthetic agents named ins-<site>-<i>")
		poll       = flag.Duration("poll", 10*time.Second, "poll window")
		duration   = flag.Duration("duration", 0, "exit after this long (0 = until interrupted)")
		timeout    = flag.Duration("timeout", 2*time.Second, "per-operation database deadline")
		staleAfter = flag.Int("stale-after", 0, "uninstall pinned paths after N consecutive failed polls (0 = never)")
		snapSync   = flag.Bool("snapshot-sync", false, "sync by snapshot+delta: one snapshot at boot, then per-poll deltas (database needs -delta-log)")
		telemAddr  = flag.String("telemetry-addr", "", "serve /metrics, /metrics.json and /debug/pprof/ on this address (empty = disabled)")
	)
	flag.Parse()

	if *telemAddr != "" {
		megate.RegisterCoreMetrics(nil)
		ts, err := megate.ServeMetrics(*telemAddr, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer ts.Close()
		fmt.Printf("telemetry on http://%s/metrics\n", ts.Addr())
	}

	var addrs []string
	for _, a := range strings.Split(*db, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		fmt.Fprintln(os.Stderr, "no database address")
		os.Exit(2)
	}

	var names []string
	if *instances != "" {
		names = strings.Split(*instances, ",")
	}
	for i := 0; i < *fleet; i++ {
		names = append(names, fmt.Sprintf("ins-%d-%d", i%12, i/12))
	}
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "nothing to do: pass -instances or -fleet")
		os.Exit(2)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if *duration > 0 {
		ctx, cancel = context.WithTimeout(ctx, *duration)
		defer cancel()
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	go func() {
		<-stop
		cancel()
	}()

	// In cluster mode every agent shares one sharded-database view; each
	// agent's polls still touch only the shard owning its own config key.
	var cc *megate.TEDatabaseCluster
	if *clustered {
		c := megate.NewTEDatabaseClusterClient()
		for _, a := range addrs {
			if err := c.Join(a, &megate.TEDatabaseClient{Addr: a, Timeout: *timeout}); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		defer c.Close()
		cc = c
	}

	var wg sync.WaitGroup
	agents := make([]*megate.Agent, len(names))
	for i, name := range names {
		var a *megate.Agent
		if cc != nil {
			a = megate.NewClusterAgent(name, cc, nil)
		} else if len(addrs) > 1 {
			client := megate.NewTEDatabaseReplicaClient(addrs)
			client.Timeout = *timeout
			a = megate.NewReplicaAgent(name, client, nil)
		} else {
			a = megate.NewRemoteAgent(name, &megate.TEDatabaseClient{Addr: addrs[0], Timeout: *timeout}, nil)
		}
		a.Slot, a.SlotCount = i, len(names)
		a.StaleAfter = *staleAfter
		if *snapSync && !megate.EnableSnapshotSync(a) {
			fmt.Fprintln(os.Stderr, "-snapshot-sync: this reader does not serve snapshots/deltas")
			os.Exit(2)
		}
		agents[i] = a
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = a.Run(ctx, *poll)
		}()
	}

	report := time.NewTicker(*poll)
	defer report.Stop()
	for {
		select {
		case <-report.C:
			var polls, updates, acks, errs, fallbacks, recoveries uint64
			var snaps, deltas, busy uint64
			degraded := 0
			maxV := uint64(0)
			for _, a := range agents {
				p, u := a.Stats()
				polls += p
				updates += u
				acks += a.EmptyAcks()
				errs += a.Errors()
				fb, rec := a.FallbackStats()
				fallbacks += fb
				recoveries += rec
				s, d := a.SyncStats()
				snaps += s
				deltas += d
				busy += a.BusyPolls()
				if a.Degraded() {
					degraded++
				}
				if v := a.LastVersion(); v > maxV {
					maxV = v
				}
			}
			line := fmt.Sprintf("agents=%d version<=%d polls=%d updates=%d empty-acks=%d errors=%d degraded=%d fallbacks=%d recoveries=%d",
				len(agents), maxV, polls, updates, acks, errs, degraded, fallbacks, recoveries)
			if *snapSync {
				line += fmt.Sprintf(" snapshots=%d deltas=%d busy=%d", snaps, deltas, busy)
			}
			fmt.Println(line)
		case <-ctx.Done():
			wg.Wait()
			return
		}
	}
}
