// Command megate-lint runs the domain-specific static analysis passes of
// internal/analysis over the repository and exits non-zero when any finding
// survives the //lint:ignore directives. It is stdlib-only (go/parser +
// go/types with the source importer) and is wired into verify.sh and
// `make lint` as a correctness gate: the passes guard the determinism,
// numeric-tolerance, and concurrency invariants the incremental control
// loop depends on.
//
// Usage:
//
//	megate-lint [-list] [packages...]
//
// Package patterns are module-relative ("./...", "./internal/lp"); the
// default is ./... from the enclosing module root.
package main

import (
	"flag"
	"fmt"
	"os"

	"megate/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the passes and exit")
	flag.Parse()

	passes := analysis.Passes()
	if *list {
		for _, p := range passes {
			fmt.Printf("%-10s %s\n", p.Name, p.Doc)
			if len(p.Paths) > 0 {
				fmt.Printf("%-10s   (scoped to %v)\n", "", p.Paths)
			}
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := analysis.ModuleRoot(wd)
	if err != nil {
		fatal(err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fatal(err)
	}
	dirs, err := analysis.ExpandPatterns(root, patterns)
	if err != nil {
		fatal(err)
	}

	findings := 0
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			// A type-check error does not stop the lint: verify.sh runs
			// `go build` first, so this is almost always a transient or
			// partial-load condition worth reporting but not hiding other
			// findings behind.
			fmt.Fprintln(os.Stderr, "megate-lint:", err)
			if pkg == nil {
				findings++
				continue
			}
		}
		for _, d := range analysis.RunPasses(passes, pkg) {
			fmt.Println(d)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "megate-lint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "megate-lint:", err)
	os.Exit(2)
}
