// Command megate-lint runs the domain-specific static analysis passes of
// internal/analysis over the repository and exits non-zero when any finding
// survives the //lint:ignore directives. It is stdlib-only (go/parser +
// go/types with the source importer) and is wired into verify.sh and
// `make lint` as a correctness gate: the passes guard the determinism,
// numeric-tolerance, concurrency, and stream-protocol invariants the
// incremental control loop depends on.
//
// Usage:
//
//	megate-lint [-list] [-json] [-pass p1,p2] [-strict-ignores] [packages...]
//
// -json emits findings as NDJSON (one object per line: file, line, col,
// pass, message) for machine consumers. -pass restricts the run to a
// comma-separated subset of pass names. -strict-ignores additionally reports
// every lint:ignore directive that suppressed nothing (pseudo-pass
// "staleignore"); note it audits only directives naming a selected pass, so
// combining it with -pass narrows the audit too.
//
// Package patterns are module-relative ("./...", "./internal/lp"); the
// default is ./... from the enclosing module root.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"megate/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the passes and exit")
	jsonOut := flag.Bool("json", false, "emit findings as NDJSON, one object per line")
	passFilter := flag.String("pass", "", "comma-separated pass names to run (default: all)")
	strictIgnores := flag.Bool("strict-ignores", false, "report lint:ignore directives that suppress nothing")
	flag.Parse()

	passes := analysis.Passes()
	if *passFilter != "" {
		passes = selectPasses(passes, *passFilter)
	}
	if *list {
		for _, p := range passes {
			fmt.Printf("%-11s %s\n", p.Name, p.Doc)
			if len(p.Paths) > 0 {
				fmt.Printf("%-11s   (scoped to %v)\n", "", p.Paths)
			}
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := analysis.ModuleRoot(wd)
	if err != nil {
		fatal(err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fatal(err)
	}
	dirs, err := analysis.ExpandPatterns(root, patterns)
	if err != nil {
		fatal(err)
	}

	loadErrs := 0
	var findings []analysis.Diagnostic
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			// A type-check error does not stop the lint: verify.sh runs
			// `go build` first, so this is almost always a transient or
			// partial-load condition worth reporting but not hiding other
			// findings behind.
			fmt.Fprintln(os.Stderr, "megate-lint:", err)
			if pkg == nil {
				loadErrs++
				continue
			}
		}
		findings = append(findings, analysis.RunPassesStrict(passes, pkg, *strictIgnores)...)
	}

	if *jsonOut {
		if err := analysis.WriteJSON(os.Stdout, findings); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range findings {
			fmt.Println(d)
		}
	}
	if n := len(findings) + loadErrs; n > 0 {
		fmt.Fprintf(os.Stderr, "megate-lint: %d finding(s)\n", n)
		os.Exit(1)
	}
}

// selectPasses filters the registry down to the comma-separated names; an
// unknown name is fatal (a typo must not silently lint nothing).
func selectPasses(passes []*analysis.Pass, filter string) []*analysis.Pass {
	byName := make(map[string]*analysis.Pass, len(passes))
	for _, p := range passes {
		byName[p.Name] = p
	}
	var out []*analysis.Pass
	for _, name := range strings.Split(filter, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		p, ok := byName[name]
		if !ok {
			known := make([]string, 0, len(passes))
			for _, q := range passes {
				known = append(known, q.Name)
			}
			fatal(fmt.Errorf("unknown pass %q (known: %s)", name, strings.Join(known, ", ")))
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		fatal(fmt.Errorf("-pass %q selects no passes", filter))
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "megate-lint:", err)
	os.Exit(2)
}
