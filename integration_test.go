package megate

import (
	"net"
	"testing"
	"time"

	"megate/internal/router"
	"megate/internal/topology"
)

// TestFullSystemIntegration drives the complete MegaTE system end to end:
// measured traffic -> demand estimation -> TE solve -> versioned publish ->
// agent pull over TCP -> eBPF path installation -> SR packets through the
// router fabric -> collected statistics for the next interval. Then a link
// fails, the controller recomputes, and the data path reconverges off the
// failed link.
func TestFullSystemIntegration(t *testing.T) {
	// Topology: B4* with 3 endpoints per site and an IP plan.
	topo := BuildTopology("B4*")
	AttachEndpointsExact(topo, 3)
	plan, err := NewIPPlan(topo)
	if err != nil {
		t.Fatal(err)
	}

	// Hosts: one per site 0 endpoint; processes and connections for a few
	// instance pairs.
	host := NewHost("host-0", 1500, plan.SiteOf)
	defer host.Close()

	type conn struct {
		tuple FiveTuple
		src   EndpointID
		dst   EndpointID
	}
	var conns []conn
	for i, srcEp := range topo.EndpointsAt(0) {
		dstSite := SiteID((i + 3) % topo.NumSites())
		if dstSite == 0 {
			dstSite = 1
		}
		dstEp := topo.EndpointsAt(dstSite)[i%3]
		tuple := FiveTuple{
			SrcIP: plan.IPOf(srcEp), DstIP: plan.IPOf(dstEp),
			Proto: IPProtoUDP, SrcPort: uint16(10000 + i), DstPort: 443,
		}
		pid := 100 + i
		host.RunProcess(pid, topo.Endpoints[srcEp].Instance)
		host.OpenConnection(pid, tuple)
		conns = append(conns, conn{tuple, srcEp, dstEp})
	}

	// Interval 0: instances send; the host stack measures.
	for _, c := range conns {
		for p := 0; p < 5; p++ {
			if _, err := host.Send(c.tuple, 7, c.tuple.SrcIP, c.tuple.DstIP, make([]byte, 2000)); err != nil {
				t.Fatal(err)
			}
		}
	}
	records := host.CollectFlows()
	if len(records) != len(conns) {
		t.Fatalf("collected %d records, want %d", len(records), len(conns))
	}
	for _, r := range records {
		if r.Instance == "" {
			t.Fatal("unattributed flow record")
		}
	}

	// Demand estimation from measurements.
	est := NewDemandEstimator(plan)
	est.Interval = time.Second
	if un := est.Observe(records); un != 0 {
		t.Fatalf("unresolved records: %d", un)
	}
	m := est.Matrix()
	if m.NumFlows() != len(conns) {
		t.Fatalf("estimated %d flows, want %d", m.NumFlows(), len(conns))
	}

	// Control plane over real TCP.
	db := NewTEDatabase(2)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeTEDatabase(l, db)
	defer srv.Close()
	solver := NewSolver(topo, SolverOptions{SplitQoS: true})
	ctrl := NewRemoteController(solver, &TEDatabaseClient{Addr: srv.Addr()})
	res, nCfg, err := ctrl.RunInterval(m)
	if err != nil {
		t.Fatal(err)
	}
	if nCfg == 0 || res.SatisfiedFraction() < 0.999 {
		t.Fatalf("interval: configs=%d satisfied=%v", nCfg, res.SatisfiedFraction())
	}

	// Agents pull for every source instance on this host.
	for i, c := range conns {
		agent := NewRemoteAgent(topo.Endpoints[c.src].Instance, &TEDatabaseClient{Addr: srv.Addr()}, host)
		agent.Slot, agent.SlotCount = i, len(conns)
		if _, err := agent.Poll(); err != nil {
			t.Fatal(err)
		}
	}
	if host.PathMap.Len() == 0 {
		t.Fatal("no paths installed")
	}

	// Data path: SR-stamped packets follow their pinned tunnels through
	// the fabric, matching the TE decision exactly.
	fabric := router.New(topo, func(ip [4]byte) (topology.SiteID, bool) {
		s, ok := plan.SiteOf(ip)
		return topology.SiteID(s), ok
	})
	flowIdx := make(map[FiveTuple]int)
	for i := range m.Flows {
		f := &m.Flows[i]
		for _, c := range conns {
			if c.src == f.Src && c.dst == f.Dst {
				flowIdx[c.tuple] = i
			}
		}
	}
	for _, c := range conns {
		frames, err := host.Send(c.tuple, 7, c.tuple.SrcIP, c.tuple.DstIP, []byte("data"))
		if err != nil {
			t.Fatal(err)
		}
		d, err := fabric.Deliver(frames[0], 0)
		if err != nil {
			t.Fatal(err)
		}
		if !d.ViaSR {
			t.Fatalf("packet for %v not SR-forwarded", c.tuple)
		}
		want := res.FlowTunnel[flowIdx[c.tuple]]
		if want == nil {
			t.Fatalf("flow %v has no tunnel", c.tuple)
		}
		if d.Egress != want.Dst {
			t.Fatalf("egress %d, want %d", d.Egress, want.Dst)
		}
		if len(d.Path) != len(want.Sites) {
			t.Fatalf("path %v, tunnel %v", d.Path, want.Sites)
		}
		for j := range d.Path {
			if d.Path[j] != want.Sites[j] {
				t.Fatalf("path %v diverges from tunnel %v", d.Path, want.Sites)
			}
		}
	}

	// Link failure: recompute, republish, agents reconverge, and the new
	// paths avoid the failed link.
	usedLink := res.FlowTunnel[flowIdx[conns[0].tuple]].Links[0]
	topo.FailLink(usedLink)
	fabric.InvalidateRoutes()
	res2, _, err := ctrl.OnLinkFailure(m)
	if err != nil {
		t.Fatal(err)
	}
	agent := NewRemoteAgent(topo.Endpoints[conns[0].src].Instance, &TEDatabaseClient{Addr: srv.Addr()}, host)
	if updated, err := agent.Poll(); err != nil || !updated {
		t.Fatalf("post-failure poll: updated=%v err=%v", updated, err)
	}
	frames, err := host.Send(conns[0].tuple, 7, conns[0].tuple.SrcIP, conns[0].tuple.DstIP, []byte("after failure"))
	if err != nil {
		t.Fatal(err)
	}
	d, err := fabric.Deliver(frames[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < len(d.Path); i++ {
		a, b := d.Path[i], d.Path[i+1]
		la := topo.Links[usedLink]
		if (la.From == a && la.To == b) || (la.From == b && la.To == a) {
			t.Fatal("post-failure packet crossed the failed link")
		}
	}
	want2 := res2.FlowTunnel[flowIdx[conns[0].tuple]]
	if want2 != nil && d.Egress != want2.Dst {
		t.Fatalf("post-failure egress %d, want %d", d.Egress, want2.Dst)
	}
}

// TestFragmentedTrafficThroughFullStack sends an oversized datagram through
// the host stack and fabric: every fragment must be attributed to the flow
// and delivered along a consistent path.
func TestFragmentedTrafficThroughFullStack(t *testing.T) {
	topo := BuildTopology("B4*")
	AttachEndpointsExact(topo, 1)
	plan, err := NewIPPlan(topo)
	if err != nil {
		t.Fatal(err)
	}
	host := NewHost("h", 1500, plan.SiteOf)
	defer host.Close()

	src, dst := topo.EndpointsAt(0)[0], topo.EndpointsAt(5)[0]
	tuple := FiveTuple{
		SrcIP: plan.IPOf(src), DstIP: plan.IPOf(dst),
		Proto: IPProtoUDP, SrcPort: 999, DstPort: 53,
	}
	host.RunProcess(1, topo.Endpoints[src].Instance)
	host.OpenConnection(1, tuple)
	host.InstallPath(topo.Endpoints[src].Instance, 5, []uint32{0, 2, 3, 6, 5})

	frames, err := host.Send(tuple, 3, tuple.SrcIP, tuple.DstIP, make([]byte, 6000))
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) < 4 {
		t.Fatalf("frames = %d, want >= 4 fragments", len(frames))
	}

	records := host.CollectFlows()
	if len(records) != 1 || records[0].Bytes < 6000 {
		t.Fatalf("fragment accounting: %+v", records)
	}

	fabric := router.New(topo, func(ip [4]byte) (topology.SiteID, bool) {
		s, ok := plan.SiteOf(ip)
		return topology.SiteID(s), ok
	})
	var firstPath []topology.SiteID
	for i, frame := range frames {
		d, err := fabric.Deliver(frame, 0)
		if err != nil {
			t.Fatalf("fragment %d: %v", i, err)
		}
		if d.Egress != 5 {
			t.Fatalf("fragment %d egressed at %d", i, d.Egress)
		}
		if i == 0 {
			if !d.ViaSR {
				t.Fatal("first fragment should carry SR")
			}
			firstPath = d.Path
			continue
		}
		if len(d.Path) != len(firstPath) {
			t.Fatalf("fragment %d path %v != first %v", i, d.Path, firstPath)
		}
	}
}
