GO ?= go

.PHONY: build test race verify bench lint fuzz-short

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/ ./internal/kvstore/ ./internal/controlplane/

verify:
	./verify.sh

lint:
	$(GO) run ./cmd/megate-lint ./...

# Bounded fuzzing for CI: each target gets a short budget on top of its
# checked-in seed corpus. `go test` accepts one -fuzz per invocation.
fuzz-short:
	$(GO) test -run FuzzKVWireProtocol -fuzz FuzzKVWireProtocol -fuzztime 10s ./internal/kvstore/
	$(GO) test -run FuzzFastSSP -fuzz FuzzFastSSP -fuzztime 10s ./internal/ssp/

bench:
	$(GO) test -bench . -benchmem -run XXX .
