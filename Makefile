GO ?= go

.PHONY: build test race verify bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/ ./internal/kvstore/ ./internal/controlplane/

verify:
	./verify.sh

bench:
	$(GO) test -bench . -benchmem -run XXX .
