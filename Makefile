GO ?= go

.PHONY: build test race verify bench lint fuzz-short chaos cluster metrics-smoke megascale-short fleet-short fastpath federation

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/ ./internal/kvstore/ ./internal/controlplane/ ./internal/faultnet/ ./internal/chaos/ ./internal/cluster/

# Sharded TE-database gate: the cluster package (ring, routing, live
# resharding) under the race detector plus the shard-loss chaos scenario.
cluster:
	$(GO) test -race ./internal/cluster/
	$(GO) test -race -run TestChaosShardLoss -v .

# Full chaos run (fixed seeds baked into chaos_test.go) under the race
# detector: controller + replicated DB servers + agent fleet under the
# scripted fault timeline.
chaos:
	$(GO) test -race -run TestChaos -v .

# Multi-domain federation gate: the gateway wire protocol, exchange and
# tier-policy tests under the race detector, plus the inter-domain partition
# chaos scenario (gateway TTL fallback + heal reimport, fixed seed).
federation:
	$(GO) test -race ./internal/federation/
	$(GO) test -race -run 'TestChaosFederation' -v .
	$(GO) test -race -run 'TestTier|TestNoPolicyBitIdentical' ./internal/core/ ./internal/traffic/

verify:
	./verify.sh

# End-to-end exporter gate: builds megate-controller, starts it with
# -telemetry-addr, and scrapes /metrics, /metrics.json and /debug/pprof/
# over real HTTP, asserting the core metric names are present.
metrics-smoke:
	$(GO) test -run TestMetricsSmoke -v .

# Full static-analysis suite, including the stale-suppression audit: a
# lint:ignore directive that suppresses nothing is itself a finding.
lint:
	$(GO) run ./cmd/megate-lint -strict-ignores ./...

# Megascale pipeline gate: a truncated ab-megascale sweep through the full
# streamed interval (solve -> per-shard batched publication), plus the
# zero-alloc gate on the stage-2 per-pair hot path — the benchmark output
# must report 0 allocs/op.
megascale-short:
	$(GO) run ./cmd/megate-bench -experiment ab-megascale -megascale-flows 20000,50000
	$(GO) test -run TestStage2PairZeroAlloc -bench BenchmarkStage2Pair -benchmem ./internal/core/ | tee /tmp/megate-stage2-bench.out
	grep -q ' 0 allocs/op' /tmp/megate-stage2-bench.out

# Fleet robustness gate: a deterministic 10k-agent storm (cold boot,
# version-skew rollout, partition, herd recovery) against a live sharded
# database with per-shard admission control. The 1s poll keeps the loopback
# dial rate honest for one machine, so the run finishes in under a minute;
# a non-zero exit means an invariant (convergence, O(1) cold sync, no
# wedges) was violated.
fleet-short:
	$(GO) run ./cmd/megate-sim -fleet -fleet-agents 10000 -fleet-poll 1s -seed 7

# Bounded fuzzing for CI: each target gets a short budget on top of its
# checked-in seed corpus. `go test` accepts one -fuzz per invocation.
fuzz-short:
	$(GO) test -run FuzzKVWireProtocol -fuzz FuzzKVWireProtocol -fuzztime 10s ./internal/kvstore/
	$(GO) test -run FuzzFastSSP -fuzz FuzzFastSSP -fuzztime 10s ./internal/ssp/
	$(GO) test -run FuzzRingOwnership -fuzz FuzzRingOwnership -fuzztime 10s ./internal/cluster/
	$(GO) test -run FuzzCFGBuild -fuzz FuzzCFGBuild -fuzztime 10s ./internal/analysis/
	$(GO) test -run FuzzFederationWire -fuzz FuzzFederationWire -fuzztime 10s ./internal/federation/

# Certificate-gated fast-path gate: the duality-certificate, drift and
# warm-ADMM property tests plus the solver routing tests (cold/churn/reject
# fallbacks, hit accounting), deterministic seeds, under the race detector.
fastpath:
	$(GO) test -race -run 'TestFastPath|TestCertificate|TestDualBound|TestReallocateDrift|TestTopUpShortest|TestZeroValueSolver|TestTunnelFingerprint' ./internal/lp/ ./internal/core/

bench:
	$(GO) test -bench . -benchmem -run XXX .
