// Measured-loop example: MegaTE running on *observed* traffic instead of a
// synthetic matrix, plus the §8 hybrid synchronization plan.
//
// The host stack's eBPF programs count bytes per five tuple; the demand
// estimator turns those counters into the next TE interval's matrix
// (EWMA-smoothed); the controller solves and publishes; and the collected
// per-instance volumes drive a hybrid plan that keeps persistent
// connections only to the heavy hitters.
package main

import (
	"fmt"
	"log"
	"time"

	"megate"
)

func main() {
	topo := megate.BuildTopology("B4*")
	megate.AttachEndpointsExact(topo, 4)
	plan, err := megate.NewIPPlan(topo)
	if err != nil {
		log.Fatal(err)
	}

	host := megate.NewHost("rack-1", 1500, plan.SiteOf)
	defer host.Close()

	// Simulated tenant activity: a few instances, one of them a heavy
	// hitter (bulk transfer), the rest light interactive traffic.
	type workload struct {
		tuple   megate.FiveTuple
		packets int
		size    int
	}
	var loads []workload
	for i := 0; i < 6; i++ {
		src := topo.EndpointsAt(megate.SiteID(i % 4))[i%4]
		dst := topo.EndpointsAt(megate.SiteID((i + 5) % 12))[(i+1)%4]
		w := workload{
			tuple: megate.FiveTuple{
				SrcIP: plan.IPOf(src), DstIP: plan.IPOf(dst),
				Proto: megate.IPProtoUDP, SrcPort: uint16(9000 + i), DstPort: 443,
			},
			packets: 20, size: 500,
		}
		if i == 0 {
			w.packets, w.size = 400, 1400 // the heavy hitter
		}
		pid := 500 + i
		host.RunProcess(pid, topo.Endpoints[src].Instance)
		host.OpenConnection(pid, w.tuple)
		loads = append(loads, w)
	}

	est := megate.NewDemandEstimator(plan)
	est.Interval = time.Second

	// Three TE intervals of measure -> estimate -> solve.
	db := megate.NewTEDatabase(2)
	solver := megate.NewSolver(topo, megate.SolverOptions{SplitQoS: true})
	ctrl := megate.NewController(solver, db)

	for interval := 0; interval < 3; interval++ {
		for _, w := range loads {
			for p := 0; p < w.packets; p++ {
				if _, err := host.Send(w.tuple, 9, w.tuple.SrcIP, w.tuple.DstIP, make([]byte, w.size)); err != nil {
					log.Fatal(err)
				}
			}
		}
		// The agent uploads the host's statistics into the TE database;
		// the controller side collects every host's report and feeds the
		// demand estimator — the full §5.1 loop over the same database the
		// configurations travel through.
		records := host.CollectFlows()
		if err := megate.ReportFlows(db, host.ID, records); err != nil {
			log.Fatal(err)
		}
		reports, err := megate.CollectReports(db)
		if err != nil {
			log.Fatal(err)
		}
		est.Observe(megate.AllRecords(reports))
		m := est.Matrix()

		res, nCfg, err := ctrl.RunInterval(m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("interval %d: %d measured flows, %.2f Mbps offered, satisfied %.1f%%, %d configs at version %d\n",
			interval, m.NumFlows(), m.TotalDemandMbps(),
			res.SatisfiedFraction()*100, nCfg, ctrl.Version())

		if interval == 2 {
			// Hybrid plan from the same measurements (§8): persistent
			// connections only where they pay off.
			volumes := megate.VolumeByInstance(records)
			hp := megate.PlanHybrid(volumes, 0.8)
			fmt.Printf("\nhybrid sync plan covering 80%% of traffic:\n")
			fmt.Printf("  persistent: %v (%.0f%% of bytes)\n", hp.Persistent, hp.PersistentShare*100)
			fmt.Printf("  polling:    %d instances on eventual consistency\n", len(hp.Polling))
			fmt.Printf("  converged traffic 2s after a failure publish: %.0f%%\n",
				hp.ConvergedShare(2*time.Second, 10*time.Second)*100)
		}
	}
}
