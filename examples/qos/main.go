// QoS example: three service classes compete for a congested WAN. MegaTE
// allocates classes sequentially — class 1 (time-sensitive) first, bulk
// last — so gaming traffic keeps short tunnels and full satisfaction while
// log shipping absorbs the congestion (§4.1 of the paper).
package main

import (
	"fmt"
	"log"

	"megate"
)

func main() {
	topo := megate.BuildTopology("Deltacom*")
	megate.AttachEndpointsExact(topo, 10)

	// Saturating workload tagged with production application profiles.
	tm := megate.GenerateTraffic(topo, megate.TrafficOptions{
		Seed:        7,
		Apps:        megate.ProductionApps,
		DemandScale: 40,
	})

	solver := megate.NewSolver(topo, megate.SolverOptions{SplitQoS: true})
	res, err := solver.Solve(tm)
	if err != nil {
		log.Fatal(err)
	}

	// Aggregate per class: satisfaction and demand-weighted latency.
	type agg struct{ demand, satisfied, latency float64 }
	perClass := map[megate.QoSClass]*agg{}
	for i, tn := range res.FlowTunnel {
		f := &tm.Flows[i]
		a := perClass[f.Class]
		if a == nil {
			a = &agg{}
			perClass[f.Class] = a
		}
		a.demand += f.DemandMbps
		if tn != nil {
			a.satisfied += f.DemandMbps
			a.latency += f.DemandMbps * tn.Weight
		}
	}

	fmt.Printf("offered %.1f Gbps over %s, satisfied %.2f%% overall\n\n",
		tm.TotalDemandMbps()/1000, topo.Name, res.SatisfiedFraction()*100)
	for _, class := range []megate.QoSClass{megate.QoS1, megate.QoS2, megate.QoS3} {
		a := perClass[class]
		if a == nil || a.demand == 0 {
			continue
		}
		lat := 0.0
		if a.satisfied > 0 {
			lat = a.latency / a.satisfied
		}
		fmt.Printf("%s: satisfied %6.2f%%  mean latency %6.2f ms  (%.1f Gbps offered)\n",
			class, a.satisfied/a.demand*100, lat, a.demand/1000)
	}
	fmt.Println("\nclass 1 keeps full satisfaction and the shortest tunnels;")
	fmt.Println("class 3 absorbs the congestion — the paper's priority pipeline.")
}
