// Control-loop example: the complete MegaTE system end to end, in process.
//
//	controller --writes--> TE database <--polls-- endpoint agents
//	                                                |
//	                                     path_map via eBPF maps
//	                                                |
//	   instance packet --TC hook--> +SR header --> WAN routers --> egress
//
// A tenant instance opens a connection, the host's eBPF programs identify
// it and collect its traffic, the controller pins its flow to a tunnel, the
// agent pulls the decision from the database, and the next packet carries a
// segment-routing header that the router fabric follows hop by hop.
package main

import (
	"fmt"
	"log"
	"net"

	"megate"
)

func main() {
	// 1. Topology: four sites in a square plus a slow diagonal; endpoint
	// IPs are 10.<site>.0.<n>.
	topo := megate.NewTopology("demo")
	a := topo.AddSite("paris", 0, 0)
	b := topo.AddSite("berlin", 900, 0)
	c := topo.AddSite("warsaw", 1500, 200)
	d := topo.AddSite("vienna", 1000, 700)
	topo.AddBidiLink(a, b, 1000, 9, 0.9999, 8)
	topo.AddBidiLink(b, c, 1000, 6, 0.9999, 8)
	topo.AddBidiLink(c, d, 1000, 7, 0.997, 3)
	topo.AddBidiLink(d, a, 1000, 11, 0.997, 3)
	topo.AddBidiLink(a, c, 400, 22, 0.997, 3) // long, cheap diagonal
	srcEP := topo.AddEndpoint(a, "tenant-42")
	dstEP := topo.AddEndpoint(c, "tenant-99")

	ipToSite := func(ip [4]byte) (uint32, bool) {
		if ip[0] != 10 || int(ip[1]) >= topo.NumSites() {
			return 0, false
		}
		return uint32(ip[1]), true
	}

	// 2. A traffic matrix with one flow: tenant-42 in Paris talks to
	// tenant-99 in Warsaw, 200 Mbps, time-sensitive.
	tm := megate.NewTrafficMatrix([]megate.Flow{{
		ID:         0,
		Src:        srcEP,
		Dst:        dstEP,
		Pair:       megate.SitePair{Src: a, Dst: c},
		DemandMbps: 200,
		Class:      megate.QoS1,
		App:        "realtime-message",
	}})

	// 3. Control plane: TE database over TCP + controller.
	db := megate.NewTEDatabase(2)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := megate.ServeTEDatabase(l, db)
	defer srv.Close()
	ctrl := megate.NewController(megate.NewSolver(topo, megate.SolverOptions{SplitQoS: true}), db)
	res, n, err := ctrl.RunInterval(tm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("controller: version %d, %d instance config(s), flow pinned to %v\n",
		ctrl.Version(), n, res.FlowTunnel[0])

	// 4. Data plane: host with eBPF programs; the endpoint agent pulls the
	// decision over TCP and installs it into path_map.
	host := megate.NewHost("paris-host-1", 1500, ipToSite)
	defer host.Close()
	host.RunProcess(4242, "tenant-42")
	tuple := megate.FiveTuple{
		SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{10, 2, 0, 1},
		Proto: megate.IPProtoUDP, SrcPort: 40000, DstPort: 8080,
	}
	host.OpenConnection(4242, tuple)

	agent := megate.NewRemoteAgent("tenant-42", &megate.TEDatabaseClient{Addr: srv.Addr()}, host)
	if _, err := agent.Poll(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("agent: pulled version %d, %d path(s) installed into path_map\n",
		agent.LastVersion(), host.PathMap.Len())

	// 5. The instance sends a packet: the TC program inserts the SR header
	// and the router fabric follows it hop by hop.
	frames, err := host.Send(tuple, 42, [4]byte{10, 0, 0, 1}, [4]byte{10, 2, 0, 1}, []byte("hello warsaw"))
	if err != nil {
		log.Fatal(err)
	}
	fabric := megate.NewFabric(topo, func(ip [4]byte) (megate.SiteID, bool) {
		s, ok := ipToSite(ip)
		return megate.SiteID(s), ok
	})
	delivery, err := fabric.Deliver(frames[0], a)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("packet: %d bytes, SR-forwarded=%v, path %v, %.1f ms\n",
		len(frames[0]), delivery.ViaSR, delivery.Path, delivery.LatencyMs)

	// 6. Flow statistics flow back up for the next TE interval.
	for _, rec := range host.CollectFlows() {
		fmt.Printf("collected: instance %s sent %d bytes on %s\n", rec.Instance, rec.Bytes, rec.Tuple)
	}
}
