// Quickstart: build a topology, generate instance-level traffic, run
// MegaTE's two-stage optimizer, and inspect the per-flow tunnel pinning.
package main

import (
	"fmt"
	"log"

	"megate"
)

func main() {
	// The Google B4 topology with 100 endpoints per site.
	topo := megate.BuildTopology("B4*")
	megate.AttachEndpointsExact(topo, 100)

	// One TE interval of endpoint-pair demands: heavy-tailed sizes, a
	// gravity model across sites, three QoS classes.
	tm := megate.GenerateTraffic(topo, megate.TrafficOptions{
		Seed:           1,
		MeanDemandMbps: 200,
	})

	// Solve: SiteMerge -> MaxSiteFlow (site-level LP) -> MaxEndpointFlow
	// (FastSSP subset-sum per site pair, in parallel).
	solver := megate.NewSolver(topo, megate.SolverOptions{SplitQoS: true})
	res, err := solver.Solve(tm)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d endpoints, %d flows, %.1f Gbps offered\n",
		topo.NumEndpoints(), tm.NumFlows(), tm.TotalDemandMbps()/1000)
	fmt.Printf("satisfied %.2f%% of demand (MaxSiteFlow %v, MaxEndpointFlow %v)\n",
		res.SatisfiedFraction()*100, res.SiteLPTime.Round(1e6), res.SSPTime.Round(1e6))

	// Every satisfied flow is pinned to exactly one tunnel: stable latency.
	for i := 0; i < 5 && i < tm.NumFlows(); i++ {
		tn := res.FlowTunnel[i]
		f := &tm.Flows[i]
		if tn == nil {
			fmt.Printf("flow %d (%s, %.1f Mbps): rejected\n", f.ID, f.Class, f.DemandMbps)
			continue
		}
		fmt.Printf("flow %d (%s, %.1f Mbps): pinned to %v\n", f.ID, f.Class, f.DemandMbps, tn)
	}
}
