// Failover example: a link fails mid-interval. MegaTE recomputes the whole
// endpoint-granular allocation in well under a second, republishes, and the
// network reconverges with almost no lost demand — while a scheme that
// recomputes in minutes loses everything that was riding the failed link
// for the whole window (§6.3, Figure 12).
package main

import (
	"fmt"
	"log"
	"time"

	"megate"
)

func main() {
	topo := megate.BuildTopology("Deltacom*")
	megate.AttachEndpointsExact(topo, 10)
	tm := megate.GenerateTraffic(topo, megate.TrafficOptions{Seed: 3, MeanDemandMbps: 800})

	solver := megate.NewSolver(topo, megate.SolverOptions{})

	// Steady state.
	pre, err := solver.Solve(tm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("steady state: %.2f%% satisfied\n", pre.SatisfiedFraction()*100)

	// Fail the two busiest links (both directions each).
	loads := make([]float64, topo.NumLinks())
	for i, tn := range pre.FlowTunnel {
		if tn == nil {
			continue
		}
		for _, l := range tn.Links {
			loads[l] += tm.Flows[i].DemandMbps
		}
	}
	var worst, second megate.LinkID
	for l := range loads {
		if loads[l] > loads[worst] {
			second, worst = worst, megate.LinkID(l)
		} else if loads[l] > loads[second] {
			second = megate.LinkID(l)
		}
	}
	fmt.Printf("failing links %d and %d (busiest: %.1f and %.1f Gbps)\n",
		worst, second, loads[worst]/1000, loads[second]/1000)
	topo.FailLink(worst)
	topo.FailLink(second)

	// Recompute: invalidate cached tunnels so new paths avoid the failure.
	solver.Invalidate()
	start := time.Now()
	post, err := solver.Solve(tm)
	if err != nil {
		log.Fatal(err)
	}
	recompute := time.Since(start)
	fmt.Printf("recomputed in %v: %.2f%% satisfied on the degraded topology\n",
		recompute.Round(time.Millisecond), post.SatisfiedFraction()*100)

	// Quantify the loss window with the failure simulator for MegaTE and a
	// slow-recompute scheme on the same scenario.
	topo.RestoreLink(worst)
	topo.RestoreLink(second)
	solver.Invalidate()
	scen := megate.FailureScenario{
		FailLinks:  []megate.LinkID{worst, second},
		TEInterval: 5 * time.Minute,
	}
	fast, err := megate.RunFailure(topo, tm, megate.Schemes()[0], scen)
	if err != nil {
		log.Fatal(err)
	}
	scen.RecomputeOverride = 100 * time.Second // the paper's measured NCFlow recompute
	slow, err := megate.RunFailure(topo, tm, megate.Schemes()[2], scen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nacross the 5-minute interval containing the failure:\n")
	fmt.Printf("  MegaTE (recompute %v): %.2f%% effective satisfied\n",
		fast.Recompute.Round(time.Millisecond), fast.EffectiveSatisfied*100)
	fmt.Printf("  NCFlow (recompute %v): %.2f%% effective satisfied\n",
		slow.Recompute, slow.EffectiveSatisfied*100)
}
