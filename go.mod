module megate

go 1.22
