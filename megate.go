// Package megate is an endpoint-granular WAN traffic-engineering system,
// reproducing "MegaTE: Extending WAN Traffic Engineering to Millions of
// Endpoints in Virtualized Cloud" (SIGCOMM 2024).
//
// Conventional WAN TE splits aggregated traffic at routers by hashing five
// tuples, so two connections of the same tenant instance can land on paths
// with very different latencies. MegaTE instead makes the endpoint flow the
// unit of traffic engineering: a two-stage optimizer assigns every
// individual flow to exactly one pre-established tunnel, endpoint hosts
// stamp packets with a segment-routing header so routers obey that
// assignment, and a versioned key-value database lets millions of endpoint
// agents pull their configuration asynchronously instead of holding
// persistent controller connections.
//
// # Quick start
//
//	topo := megate.BuildTopology("B4*")
//	megate.AttachEndpoints(topo, 100, 0.7, 1)
//	tm := megate.GenerateTraffic(topo, megate.TrafficOptions{Seed: 1})
//	solver := megate.NewSolver(topo, megate.SolverOptions{SplitQoS: true})
//	res, err := solver.Solve(tm)
//	// res.FlowTunnel[i] is flow i's pinned tunnel; res.SatisfiedFraction()
//	// is the satisfied-demand ratio.
//
// The subsystems are usable on their own: the control loop
// (NewTEDatabase/NewController/NewAgent), the eBPF-style host stack
// (NewHost), the WAN data plane (NewFabric), the comparison schemes
// (Schemes), and the flow-level simulators behind the paper's evaluation
// (RunFailure, RunProductionComparison).
package megate

import (
	"io"
	"net"

	"megate/internal/baselines"
	"megate/internal/cluster"
	"megate/internal/controlplane"
	"megate/internal/core"
	"megate/internal/federation"
	"megate/internal/flowsim"
	"megate/internal/hoststack"
	"megate/internal/kvstore"
	"megate/internal/lp"
	"megate/internal/packet"
	"megate/internal/router"
	"megate/internal/telemetry"
	"megate/internal/topology"
	"megate/internal/traffic"
)

// Topology is the two-layer network graph: router sites joined by
// capacitated WAN links, with virtual-instance endpoints attached to sites.
type Topology = topology.Topology

// Site/link/endpoint identifiers.
type (
	SiteID     = topology.SiteID
	LinkID     = topology.LinkID
	EndpointID = topology.EndpointID
)

// Tunnel is a pre-established site-level path with a weight (latency).
type Tunnel = topology.Tunnel

// NewTopology returns an empty topology; use AddSite/AddBidiLink/
// AddEndpoint to populate it.
func NewTopology(name string) *Topology { return topology.New(name) }

// BuildTopology constructs one of the evaluation topologies of Table 2:
// "B4*", "Deltacom*", "Cogentco*" or "TWAN".
func BuildTopology(name string) *Topology { return topology.Build(name) }

// ParseTopologyGML reads an Internet Topology Zoo GML file (the source of
// the paper's Deltacom and Cogentco graphs). Link attributes are
// synthesized deterministically from the seed since the Zoo publishes only
// connectivity and coordinates.
func ParseTopologyGML(r io.Reader, name string, seed int64) (*Topology, error) {
	return topology.ParseGML(r, name, seed)
}

// TopologyNames lists the built-in topology names.
func TopologyNames() []string {
	names := make([]string, len(topology.Specs))
	for i, s := range topology.Specs {
		names[i] = s.Name
	}
	return names
}

// AttachEndpoints attaches endpoints to sites following the Weibull
// endpoints-per-site distribution the paper fits to production traces
// (Figure 8). meanPerSite sets the distribution mean, shape its skew
// (values below 1 give the production-like orders-of-magnitude spread).
func AttachEndpoints(t *Topology, meanPerSite, shape float64, seed int64) int {
	return topology.AttachEndpoints(t, meanPerSite, shape, seed)
}

// AttachEndpointsExact attaches exactly perSite endpoints to every site.
func AttachEndpointsExact(t *Topology, perSite int) int {
	return topology.AttachEndpointsExact(t, perSite)
}

// TrafficMatrix is one TE interval's set of endpoint-pair demands.
type TrafficMatrix = traffic.Matrix

// TrafficOptions parameterizes the synthetic instance-level traffic
// generator (§6.1): gravity-model site selection, heavy-tailed per-flow
// demands, QoS class mix, optional application tagging.
type TrafficOptions = traffic.GenOptions

// Flow is one endpoint-pair demand d_k^i.
type Flow = traffic.Flow

// QoSClass is a traffic service class; class 1 is the highest priority.
type QoSClass = traffic.Class

// QoS classes (§4.1).
const (
	QoS1 = traffic.Class1
	QoS2 = traffic.Class2
	QoS3 = traffic.Class3
)

// SitePair identifies an ordered pair of router sites.
type SitePair = traffic.SitePair

// NewTrafficMatrix builds a matrix from explicit flows (IDs should be
// unique).
func NewTrafficMatrix(flows []Flow) *TrafficMatrix { return traffic.NewMatrix(flows) }

// GenerateTraffic produces one interval's matrix over the topology's
// endpoints.
func GenerateTraffic(t *Topology, opts TrafficOptions) *TrafficMatrix {
	return traffic.Generate(t, opts)
}

// GenerateTrace produces a diurnal day-long sequence of matrices.
func GenerateTrace(t *Topology, intervals int, opts TrafficOptions) *traffic.Trace {
	return traffic.GenerateTrace(t, intervals, opts)
}

// ProductionApps are the §7 application profiles (video/live streaming,
// real-time messaging, payments, gaming, bulk transfer, log shipping).
var ProductionApps = traffic.ProductionApps

// SolverOptions configures the two-stage optimizer (Algorithm 1).
type SolverOptions = core.Options

// Solver runs MegaTE's two-stage optimization: SiteMerge + MaxSiteFlow on
// the contracted site graph, then MaxEndpointFlow (FastSSP subset-sum) per
// site pair in parallel.
type Solver = core.Solver

// SiteSolver solves the stage-one MaxSiteFlow LP.
type SiteSolver = core.SiteSolver

// ApproxSiteSolver returns the default (1−ε)-approximate MaxSiteFlow solver
// (Fleischer/Garg–Könemann); epsilon <= 0 uses 0.05.
func ApproxSiteSolver(epsilon float64) SiteSolver {
	if epsilon <= 0 {
		epsilon = 0.05
	}
	return &lp.FleischerMCF{Epsilon: epsilon}
}

// ExactSiteSolver returns the exact GUB simplex for MaxSiteFlow: a primal
// simplex whose working basis scales with the link count rather than the
// site-pair count, usable up to thousands of site pairs.
func ExactSiteSolver() SiteSolver { return &lp.GUBSimplex{} }

// Result carries per-flow tunnel assignments and satisfaction metrics.
type Result = core.Result

// NewSolver creates a solver over the topology.
func NewSolver(t *Topology, opts SolverOptions) *Solver { return core.NewSolver(t, opts) }

// TEDatabase is the sharded, versioned key-value store at the heart of the
// bottom-up control loop (§3.2).
type TEDatabase = kvstore.Store

// NewTEDatabase creates a database with the given shard count (the paper's
// production deployment uses two shards).
func NewTEDatabase(shards int) *TEDatabase { return kvstore.NewStore(shards) }

// TEDatabaseServer serves a TEDatabase over TCP.
type TEDatabaseServer = kvstore.Server

// ServeTEDatabase starts serving store on l.
func ServeTEDatabase(l net.Listener, store *TEDatabase) *TEDatabaseServer {
	return kvstore.Serve(l, store)
}

// TEDatabaseClient is a short-connection client for the TE database. Every
// operation carries a deadline (Timeout, default 2 s) and can be retried
// under a seeded-jitter Backoff schedule.
type TEDatabaseClient = kvstore.Client

// TEDatabaseReplicaClient fails reads over across an ordered replica list
// and fans writes out to every replica — the replicated deployment of the
// paper's sharded database.
type TEDatabaseReplicaClient = kvstore.ReplicaClient

// NewTEDatabaseReplicaClient builds a failover client over the ordered
// replica addresses.
func NewTEDatabaseReplicaClient(addrs []string) *TEDatabaseReplicaClient {
	return kvstore.NewReplicaClient(addrs)
}

// TEDatabaseCluster is the horizontally partitioned deployment of the TE
// database: records are spread across shards by consistent hashing, point
// operations route to the owning shard, enumeration scatter-gathers, and
// shards can be added or drained live with minimal key movement.
type TEDatabaseCluster = cluster.Client

// NewTEDatabaseClusterClient returns an empty sharded-database view with
// the default ring parameters; Join adds shards, each reached through its
// own (caller-configured) node client. Every participant — controllers,
// agents, operators — must build its view from the same shard names so
// ownership agrees.
func NewTEDatabaseClusterClient() *TEDatabaseCluster { return cluster.New(0, 0) }

// NewClusterClient builds a sharded-database client over the given shard
// addresses, one shard per address, named by its address.
func NewClusterClient(addrs []string) (*TEDatabaseCluster, error) {
	c := NewTEDatabaseClusterClient()
	for _, a := range addrs {
		if err := c.Join(a, &kvstore.Client{Addr: a}); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// Controller is the TE control plane: it solves each interval and publishes
// versioned per-instance configurations to the TE database.
type Controller = controlplane.Controller

// NewController wires a solver to a database (in-process).
func NewController(solver *Solver, db *TEDatabase) *Controller {
	return controlplane.NewController(solver, controlplane.StoreAdapter{Store: db})
}

// NewRemoteController wires a solver to a database over TCP.
func NewRemoteController(solver *Solver, client *TEDatabaseClient) *Controller {
	return controlplane.NewController(solver, controlplane.ClientAdapter{Client: client})
}

// NewReplicaController wires a solver to a replicated database: each
// interval's writes fan out to every replica.
func NewReplicaController(solver *Solver, client *TEDatabaseReplicaClient) *Controller {
	return controlplane.NewController(solver, controlplane.ReplicaAdapter{Client: client})
}

// RecoverController rebuilds a restarted controller's delta-publication
// state (written-record hashes and the published version) from the
// database, so its next interval writes only churned records instead of
// rewriting the fleet. It returns the number of records restored.
func RecoverController(c *Controller, client *TEDatabaseReplicaClient) (int, error) {
	return c.Recover(controlplane.ReplicaAdapter{Client: client})
}

// NewClusterController wires a solver to a sharded database: each record is
// written to its owning shard and the version epoch fans out to every
// shard. Write-error tolerance is on — a lost shard degrades only the
// records homed on it while every surviving shard keeps converging.
func NewClusterController(solver *Solver, client *TEDatabaseCluster) *Controller {
	c := controlplane.NewController(solver, controlplane.ClusterAdapter{Client: client})
	c.TolerateWriteErrors = true
	return c
}

// RecoverClusterController rebuilds a restarted controller's
// delta-publication state from the sharded database's scatter-gathered
// enumeration. It returns the number of records restored.
func RecoverClusterController(c *Controller, client *TEDatabaseCluster) (int, error) {
	return c.Recover(controlplane.ClusterAdapter{Client: client})
}

// Agent is the endpoint agent: it polls the TE database with short
// connections (spread over the poll window) and installs SR paths into the
// host's path_map on version changes.
type Agent = controlplane.Agent

// InstanceConfig is the per-instance TE record stored in the database.
type InstanceConfig = controlplane.InstanceConfig

// NewAgent creates an agent for an instance, reading from an in-process
// database and installing into host (which may be nil).
func NewAgent(instance string, db *TEDatabase, host *Host) *Agent {
	return &Agent{Instance: instance, Reader: controlplane.StoreAdapter{Store: db}, Host: host}
}

// NewRemoteAgent creates an agent polling the database over TCP.
func NewRemoteAgent(instance string, client *TEDatabaseClient, host *Host) *Agent {
	return &Agent{Instance: instance, Reader: controlplane.ClientAdapter{Client: client}, Host: host}
}

// NewReplicaAgent creates an agent that fails over across database
// replicas when polling.
func NewReplicaAgent(instance string, client *TEDatabaseReplicaClient, host *Host) *Agent {
	return &Agent{Instance: instance, Reader: controlplane.ReplicaAdapter{Client: client}, Host: host}
}

// NewClusterAgent creates an agent for the sharded database: both its
// version poll and its config pull go only to the shard owning the
// instance's config key, so per-shard poll load stays flat as shards are
// added and a shard outage touches only the agents homed on it.
func NewClusterAgent(instance string, client *TEDatabaseCluster, host *Host) *Agent {
	return &Agent{
		Instance: instance,
		Reader:   controlplane.ClusterHomeReader{Client: client, Key: controlplane.ConfigKey(instance)},
		Host:     host,
	}
}

// EnableSnapshotSync switches an agent from full-config polling to the
// snapshot+delta protocol: one snapshot at boot, then each poll carries only
// the records published since the agent's cursor (falling back to a snapshot
// on a journal gap). It works with every reader this package constructs —
// in-process, remote, replicated, and sharded — and reports whether the
// agent's reader supports the protocol. The database side must have a delta
// journal enabled (EnableDeltaLog) for steady-state polls to stay O(changes).
func EnableSnapshotSync(a *Agent) bool {
	if src, ok := a.Reader.(controlplane.DeltaSource); ok {
		a.Sync = src
		return true
	}
	return false
}

// Host is the eBPF-based end-host networking stack (§5): instance
// identification, instance-level flow collection, and SR header insertion
// at the TC layer.
type Host = hoststack.Host

// NewHost creates a host with its eBPF programs attached. mtu bounds outer
// packets; ipToSite resolves destination endpoint IPs to sites for SR
// insertion (nil disables SR — conventional behaviour).
func NewHost(id string, mtu int, ipToSite func([4]byte) (uint32, bool)) *Host {
	return hoststack.NewHost(id, mtu, ipToSite)
}

// FlowRecord is one collected instance-level flow statistic.
type FlowRecord = hoststack.FlowRecord

// FiveTuple identifies a connection: the key of the host stack's eBPF maps
// and the input to conventional ECMP hashing.
type FiveTuple = packet.FiveTuple

// IPProtoUDP is the UDP protocol number for FiveTuple.Proto.
const IPProtoUDP = packet.IPProtoUDP

// Fabric is the WAN data plane: one router per site, forwarding by MegaTE
// SR headers with conventional five-tuple ECMP as the fallback.
type Fabric = router.Fabric

// Delivery describes a frame's trip through the fabric.
type Delivery = router.Delivery

// NewFabric builds the data plane over a topology. ipToSite resolves outer
// destination IPs for conventional forwarding.
func NewFabric(t *Topology, ipToSite func([4]byte) (SiteID, bool)) *Fabric {
	return router.New(t, ipToSite)
}

// IPPlan assigns every endpoint an IPv4 address and resolves addresses back
// to endpoints and sites — the mapping hosts and routers consult.
type IPPlan = controlplane.IPPlan

// NewIPPlan builds the address plan for a topology's endpoints.
func NewIPPlan(t *Topology) (*IPPlan, error) { return controlplane.NewIPPlan(t) }

// DemandEstimator closes the measurement loop: collected host flow records
// become the next TE interval's traffic matrix, EWMA-smoothed.
type DemandEstimator = controlplane.DemandEstimator

// NewDemandEstimator creates an estimator over the address plan.
func NewDemandEstimator(plan *IPPlan) *DemandEstimator {
	return controlplane.NewDemandEstimator(plan)
}

// FlowReport is one host's uploaded flow statistics for a TE interval.
type FlowReport = controlplane.FlowReport

// ReportFlows uploads a host's collected records into the TE database
// (§5.1's statistics path, in the opposite direction of configurations).
func ReportFlows(db *TEDatabase, hostID string, records []FlowRecord) error {
	return controlplane.ReportFlows(controlplane.StoreAdapter{Store: db}, hostID, records)
}

// ReportFlowsRemote uploads over TCP.
func ReportFlowsRemote(client *TEDatabaseClient, hostID string, records []FlowRecord) error {
	return controlplane.ReportFlows(controlplane.ClientAdapter{Client: client}, hostID, records)
}

// CollectReports gathers every host's latest flow report — the controller's
// input to demand estimation for the next interval.
func CollectReports(db *TEDatabase) ([]FlowReport, error) {
	return controlplane.CollectReports(controlplane.StoreAdapter{Store: db})
}

// AllRecords flattens reports into one record list for a DemandEstimator.
func AllRecords(reports []FlowReport) []FlowRecord {
	return controlplane.AllRecords(reports)
}

// HybridPlan is the §8 hybrid synchronization: persistent push connections
// for heavy-traffic instances, eventual-consistency polling for the rest.
type HybridPlan = controlplane.HybridPlan

// PlanHybrid selects the smallest instance set covering coverShare of
// traffic for persistent connections.
func PlanHybrid(volumes map[string]float64, coverShare float64) HybridPlan {
	return controlplane.PlanHybrid(volumes, coverShare)
}

// VolumeByInstance aggregates collected flow records per source instance,
// the input to PlanHybrid.
func VolumeByInstance(records []FlowRecord) map[string]float64 {
	return controlplane.VolumeByInstance(records)
}

// MetricsRegistry is a named set of telemetry instruments (counters, gauges,
// fixed-bucket histograms). Every component reports into the process-wide
// DefaultMetrics registry unless given its own via its Metrics field or
// option.
type MetricsRegistry = telemetry.Registry

// MetricsSample is one exported series value in a registry snapshot.
type MetricsSample = telemetry.Sample

// MetricsServer is the HTTP exporter: Prometheus text on /metrics, a JSON
// snapshot on /metrics.json, and the runtime profiles under /debug/pprof/.
type MetricsServer = telemetry.Server

// NewMetricsRegistry returns an empty registry, for callers that want their
// telemetry isolated from the process-wide default.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }

// DefaultMetrics returns the process-wide registry.
func DefaultMetrics() *MetricsRegistry { return telemetry.Default }

// RegisterCoreMetrics pre-registers the kvstore and control-plane metric
// inventories in r (nil means the default registry), so a scrape sees the
// full zero-valued name set before any traffic flows.
func RegisterCoreMetrics(r *MetricsRegistry) {
	if r == nil {
		r = telemetry.Default
	}
	kvstore.RegisterMetrics(r)
	controlplane.RegisterMetrics(r)
	cluster.RegisterMetrics(r)
	federation.RegisterMetrics(r)
}

// ServeMetrics starts the telemetry exporter on addr serving r (nil means
// the default registry). Close the returned server to stop it.
func ServeMetrics(addr string, r *MetricsRegistry) (*MetricsServer, error) {
	if r == nil {
		r = telemetry.Default
	}
	return telemetry.ListenAndServe(addr, r)
}

// Scheme is a TE scheme under evaluation; Schemes lists MegaTE plus the
// paper's comparison schemes.
type Scheme = baselines.Scheme

// SchemeSolution is a per-flow allocation from any scheme.
type SchemeSolution = baselines.Solution

// Schemes returns the four evaluated schemes of §6: MegaTE, LP-all, NCFlow
// and TEAL.
func Schemes() []Scheme {
	return []Scheme{
		&baselines.MegaTE{},
		&baselines.LPAll{},
		&baselines.NCFlow{},
		&baselines.TEAL{},
	}
}

// FailureScenario and FailureOutcome drive the §6.3 link-failure
// experiments.
type (
	FailureScenario = flowsim.FailureScenario
	FailureOutcome  = flowsim.FailureOutcome
)

// RunFailure measures a scheme's satisfied demand across a TE interval
// containing link failures (Figure 12).
func RunFailure(t *Topology, m *TrafficMatrix, scheme Scheme, scen FailureScenario) (FailureOutcome, error) {
	return flowsim.RunFailure(t, m, scheme, scen)
}

// Simulation drives a scheme across a day-long trace with failure events,
// producing one IntervalRecord per TE interval.
type (
	Simulation     = flowsim.Simulation
	SimEvent       = flowsim.Event
	IntervalRecord = flowsim.IntervalRecord
)

// AppMetrics aggregates an application's latency, availability and cost.
type AppMetrics = flowsim.AppMetrics

// RunProductionComparison runs the §7 comparison on one matrix: the
// conventional hash-blending TE versus MegaTE's QoS-aware instance-pinned
// allocation. It returns per-app metrics for both.
func RunProductionComparison(t *Topology, m *TrafficMatrix) (conventional, mega map[string]*AppMetrics, err error) {
	conventional, err = flowsim.RunConventional(t, m)
	if err != nil {
		return nil, nil, err
	}
	mega, err = flowsim.RunMegaTE(t, m)
	if err != nil {
		return nil, nil, err
	}
	return conventional, mega, nil
}
